// The refinement subsystem: paged FeatureStore semantics and cost
// accounting, the batched parallel refinement executor's correctness and
// thread-count invariance, and the refine option end to end through the
// SpatialJoiner facade (two-way and multiway).

#include "refine/refine.h"

#include <gtest/gtest.h>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "refine/feature_store.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForceExactPairs;
using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

bool SameDiskStats(const DiskStats& x, const DiskStats& y) {
  return x.pages_read == y.pages_read && x.pages_written == y.pages_written &&
         x.read_requests == y.read_requests &&
         x.write_requests == y.write_requests &&
         x.io_seconds == y.io_seconds;
}

TEST(FeatureStore, BuildOpenFetchRoundtrip) {
  TestDisk td;
  auto pager = td.NewPager("geom");
  const RectF region(0, 0, 100, 100);
  const auto rects = UniformRects(1300, region, 2.0f, /*seed=*/11);
  const auto geom = SegmentsForRects(rects);
  auto built = FeatureStore::Build(pager.get(), geom, "roundtrip");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->count(), geom.size());
  // 512 16-byte records per 8 KB page.
  EXPECT_EQ(built->data_pages(), (geom.size() + 511) / 512);

  auto opened = FeatureStore::Open(pager.get());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->count(), geom.size());
  for (ObjectId id : {ObjectId{0}, ObjectId{511}, ObjectId{512},
                      ObjectId{1299}}) {
    auto s = opened->Fetch(id);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->x1, geom[id].x1);
    EXPECT_EQ(s->y1, geom[id].y1);
    EXPECT_EQ(s->x2, geom[id].x2);
    EXPECT_EQ(s->y2, geom[id].y2);
  }
  EXPECT_FALSE(opened->Fetch(1300).ok());
}

TEST(FeatureStore, OpenRejectsForeignPages) {
  TestDisk td;
  auto pager = td.NewPager("not.a.store");
  StreamWriter<RectF> writer(pager.get());
  writer.Append(RectF(0, 0, 1, 1, 7));
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_FALSE(FeatureStore::Open(pager.get()).ok());
}

TEST(FeatureStore, BaseIdOffsetsTheKeySpace) {
  TestDisk td;
  auto pager = td.NewPager("geom.base");
  const auto rects =
      UniformRects(100, RectF(0, 0, 10, 10), 1.0f, /*seed=*/3,
                   /*base_id=*/5000);
  const auto geom = SegmentsForRects(rects);
  auto store = FeatureStore::Build(pager.get(), geom, "based", 5000);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->Fetch(0).ok());
  EXPECT_FALSE(store->Fetch(4999).ok());
  auto s = store->Fetch(5042);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->x1, geom[42].x1);
}

TEST(FeatureStore, FetchBatchReadsEachPageOnce) {
  TestDisk td;
  auto pager = td.NewPager("geom.batch");
  const auto rects = UniformRects(2000, RectF(0, 0, 100, 100), 2.0f, 13);
  const auto geom = SegmentsForRects(rects);
  auto store = FeatureStore::Build(pager.get(), geom, "batch");
  ASSERT_TRUE(store.ok());

  // Ids spanning all 4 data pages, shuffled order, with duplicates.
  const std::vector<ObjectId> ids = {1999, 0, 511, 512, 1023, 0,
                                     1024, 700, 1536, 700};
  const DiskStats before = td.disk.stats();
  std::vector<Segment> out;
  auto pages = store->FetchBatch(ids, &out);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(*pages, 4u);  // 2000 records = 4 pages, each read once.
  const DiskStats delta = td.disk.stats() - before;
  EXPECT_EQ(delta.pages_read, 4u);
  // Consecutive pages coalesce into a single run request.
  EXPECT_EQ(delta.read_requests, 1u);
  // Results arrive in input order, duplicates included.
  ASSERT_EQ(out.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(out[i].x1, geom[ids[i]].x1) << "slot " << i;
    EXPECT_EQ(out[i].y2, geom[ids[i]].y2) << "slot " << i;
  }
  // An out-of-range id anywhere in the batch fails the whole fetch.
  std::vector<Segment> unused;
  EXPECT_FALSE(store->FetchBatch({ObjectId{5}, ObjectId{2000}}, &unused).ok());
}

TEST(FeatureStore, FetchBatchChargesExternalShard) {
  TestDisk td;
  auto pager = td.NewPager("geom.shard");
  const auto rects = UniformRects(1000, RectF(0, 0, 50, 50), 1.0f, 17);
  auto store =
      FeatureStore::Build(pager.get(), SegmentsForRects(rects), "shard");
  ASSERT_TRUE(store.ok());

  DiskModel shard(td.disk.machine());
  const uint32_t dev = shard.RegisterDevice("refine.test");
  const DiskStats own_before = td.disk.stats();
  std::vector<Segment> out;
  auto pages = store->FetchBatch({ObjectId{0}, ObjectId{999}}, &out, &shard,
                                 dev);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(*pages, 2u);
  // All modeled I/O lands on the shard; the store's own disk is untouched.
  EXPECT_EQ(shard.stats().pages_read, 2u);
  EXPECT_EQ((td.disk.stats() - own_before).pages_read, 0u);
  EXPECT_EQ(out[0].x1, SegmentForRect(rects[0]).x1);
  EXPECT_EQ(out[1].x1, SegmentForRect(rects[999]).x1);
}

TEST(Refine, PairsMatchBruteForceAndAreThreadInvariant) {
  TestDisk td;
  const RectF region(0, 0, 300, 300);
  const auto a = UniformRects(900, region, 3.0f, 21);
  const auto b = UniformRects(800, region, 4.0f, 22);
  const auto ga = SegmentsForRects(a);
  const auto gb = SegmentsForRects(b);
  auto pager_a = td.NewPager("geom.a");
  auto pager_b = td.NewPager("geom.b");
  auto store_a = FeatureStore::Build(pager_a.get(), ga, "a");
  auto store_b = FeatureStore::Build(pager_b.get(), gb, "b");
  ASSERT_TRUE(store_a.ok() && store_b.ok());

  const std::vector<IdPair> candidates = BruteForcePairs(a, b);
  const std::vector<IdPair> expected = BruteForceExactPairs(a, b, ga, gb);
  ASSERT_GT(candidates.size(), expected.size());  // The filter over-approximates.
  ASSERT_FALSE(expected.empty());

  std::vector<IdPair> reference_pairs;
  RefineStats reference;
  for (uint32_t threads : {1u, 2u, 8u}) {
    JoinOptions options;
    options.num_threads = threads;
    options.refine_batch_pairs = 128;  // Several batches per run.
    CollectingSink sink;
    auto stats =
        RefinePairs(candidates, *store_a, *store_b, options, &sink);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->candidates, candidates.size());
    EXPECT_EQ(stats->results, expected.size());
    EXPECT_EQ(Sorted(sink.pairs()), expected);
    EXPECT_GT(stats->pages_read, 0u);
    if (threads == 1) {
      reference_pairs = sink.pairs();
      reference = *stats;
    } else {
      // Output order, pages, and modeled I/O identical at every thread
      // count (per-batch DiskModel shards, merged in batch order).
      EXPECT_EQ(sink.pairs(), reference_pairs) << threads << " threads";
      EXPECT_EQ(stats->pages_read, reference.pages_read);
      EXPECT_TRUE(SameDiskStats(stats->disk, reference.disk))
          << threads << " threads";
    }
  }
}

TEST(Refine, JoinerRefinesThroughEveryAlgorithm) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 200, 200);
  const auto a = UniformRects(700, region, 3.0f, 31);
  const auto b = UniformRects(600, region, 3.0f, 32);
  const auto ga = SegmentsForRects(a);
  const auto gb = SegmentsForRects(b);
  const auto expected = BruteForceExactPairs(a, b, ga, gb);
  const auto expected_candidates = BruteForcePairs(a, b);

  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  auto pager_a = td.NewPager("geom.a");
  auto pager_b = td.NewPager("geom.b");
  auto store_a = FeatureStore::Build(pager_a.get(), ga, "a");
  auto store_b = FeatureStore::Build(pager_b.get(), gb, "b");
  ASSERT_TRUE(store_a.ok() && store_b.ok());
  auto tree_a_pager = td.NewPager("tree.a");
  auto tree_b_pager = td.NewPager("tree.b");
  auto scratch = td.NewPager("scratch");
  auto ta = RTree::BulkLoadHilbert(tree_a_pager.get(), da.range,
                                   scratch.get(), RTreeParams(), 1 << 22);
  auto tb = RTree::BulkLoadHilbert(tree_b_pager.get(), db.range,
                                   scratch.get(), RTreeParams(), 1 << 22);
  ASSERT_TRUE(ta.ok() && tb.ok());

  JoinOptions options;
  options.refine = true;
  SpatialJoiner joiner(&td.disk, options);
  JoinInput ia = JoinInput::FromRTree(&*ta);
  JoinInput ib = JoinInput::FromRTree(&*tb);
  ia.WithFeatures(&*store_a);
  ib.WithFeatures(&*store_b);
  for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                             JoinAlgorithm::kST, JoinAlgorithm::kPQ,
                             JoinAlgorithm::kAuto}) {
    CollectingSink sink;
    auto stats = JoinQuery(joiner).Input(ia).Input(ib).Algorithm(algo).Run(
        &sink);
    ASSERT_TRUE(stats.ok()) << ToString(algo) << ": "
                            << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << ToString(algo);
    EXPECT_EQ(stats->output_count, expected.size()) << ToString(algo);
    EXPECT_EQ(stats->candidate_count, expected_candidates.size())
        << ToString(algo);
    EXPECT_GT(stats->refine_pages_read, 0u) << ToString(algo);
  }
}

TEST(Refine, JoinerWithoutStoresFailsPrecondition) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = UniformRects(50, RectF(0, 0, 10, 10), 1.0f, 41);
  const auto b = UniformRects(50, RectF(0, 0, 10, 10), 1.0f, 42);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  JoinOptions options;
  options.refine = true;
  SpatialJoiner joiner(&td.disk, options);
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(da))
                   .Input(JoinInput::FromStream(db))
                   .Run(&sink);
  EXPECT_FALSE(stats.ok());
}

TEST(Refine, UnrefinedJoinReportsCandidatesEqualOutput) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = UniformRects(300, RectF(0, 0, 50, 50), 2.0f, 51);
  const auto b = UniformRects(300, RectF(0, 0, 50, 50), 2.0f, 52);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  SpatialJoiner joiner(&td.disk, JoinOptions());
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(da))
                   .Input(JoinInput::FromStream(db))
                   .Algorithm(JoinAlgorithm::kSSSJ)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->candidate_count, stats->output_count);
  EXPECT_EQ(stats->refine_pages_read, 0u);
}

TEST(Refine, MultiwayTuplesPairwisePredicate) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 120, 120);
  const auto a = UniformRects(260, region, 6.0f, 61);
  const auto b = UniformRects(240, region, 6.0f, 62);
  const auto c = UniformRects(220, region, 6.0f, 63);
  const auto ga = SegmentsForRects(a);
  const auto gb = SegmentsForRects(b);
  const auto gc = SegmentsForRects(c);

  // Brute-force reference: MBR tuples with a common intersection point,
  // then the pairwise exact-segment predicate.
  std::vector<std::vector<ObjectId>> filter_tuples, exact_tuples;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (!a[i].Intersects(b[j])) continue;
      const RectF ab = a[i].IntersectionWith(b[j]);
      for (size_t k = 0; k < c.size(); ++k) {
        if (!ab.Intersects(c[k])) continue;
        filter_tuples.push_back({a[i].id, b[j].id, c[k].id});
        if (SegmentsIntersect(ga[i], gb[j]) &&
            SegmentsIntersect(ga[i], gc[k]) &&
            SegmentsIntersect(gb[j], gc[k])) {
          exact_tuples.push_back({a[i].id, b[j].id, c[k].id});
        }
      }
    }
  }
  std::sort(exact_tuples.begin(), exact_tuples.end());
  ASSERT_FALSE(filter_tuples.empty());

  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  const DatasetRef dc = MakeDataset(&td, c, "c", &keep);
  auto pa = td.NewPager("geom.a");
  auto pb = td.NewPager("geom.b");
  auto pc = td.NewPager("geom.c");
  auto sa = FeatureStore::Build(pa.get(), ga, "a");
  auto sb = FeatureStore::Build(pb.get(), gb, "b");
  auto sc = FeatureStore::Build(pc.get(), gc, "c");
  ASSERT_TRUE(sa.ok() && sb.ok() && sc.ok());

  for (uint32_t threads : {1u, 2u, 8u}) {
    JoinOptions options;
    options.refine = true;
    options.refine_batch_pairs = 64;
    options.num_threads = threads;
    SpatialJoiner joiner(&td.disk, options);
    JoinInput ia = JoinInput::FromStream(da);
    JoinInput ib = JoinInput::FromStream(db);
    JoinInput ic = JoinInput::FromStream(dc);
    ia.WithFeatures(&*sa);
    ib.WithFeatures(&*sb);
    ic.WithFeatures(&*sc);
    CollectingTupleSink sink;
    auto stats = JoinQuery(joiner).Input(ia).Input(ib).Input(ic).Run(
        static_cast<TupleSink*>(&sink));
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->candidate_count, filter_tuples.size());
    EXPECT_EQ(stats->output_count, exact_tuples.size());
    auto got = sink.tuples();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, exact_tuples) << threads << " threads";
  }
}

}  // namespace
}  // namespace sj
