#include "join/pq_join.h"

#include "join/st_join.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

class PQJoinFixture {
 public:
  RTree Build(const std::vector<RectF>& rects, uint32_t fanout,
              const std::string& name) {
    pagers_.push_back(td.NewPager("tree." + name));
    Pager* tree_pager = pagers_.back().get();
    auto scratch = td.NewPager("scratch." + name);
    const DatasetRef ref = MakeDataset(&td, rects, name, &pagers_);
    RTreeParams params;
    params.max_entries = fanout;
    auto tree = RTree::BulkLoadHilbert(tree_pager, ref.range, scratch.get(),
                                       params, 1 << 22);
    SJ_CHECK(tree.ok()) << tree.status().ToString();
    pagers_.push_back(std::move(scratch));
    return std::move(tree).value();
  }

  DatasetRef Dataset(const std::vector<RectF>& rects,
                     const std::string& name) {
    return MakeDataset(&td, rects, name, &pagers_);
  }

  TestDisk td;

 private:
  std::vector<std::unique_ptr<Pager>> pagers_;
};

TEST(PQJoin, IndexIndexMatchesBruteForce) {
  PQJoinFixture f;
  const RectF region(0, 0, 400, 400);
  const auto a = UniformRects(4000, region, 2.0f, 1);
  const auto b = ClusteredRects(3500, region, 6, 20.0f, 2.0f, 2);
  RTree ta = f.Build(a, 32, "a");
  RTree tb = f.Build(b, 32, "b");
  CollectingSink sink;
  auto stats = PQJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
  EXPECT_EQ(stats->index_pages_read, ta.node_count() + tb.node_count());
}

TEST(PQJoin, IndexStreamMatchesBruteForce) {
  PQJoinFixture f;
  const RectF region(0, 0, 400, 400);
  const auto a = UniformRects(3000, region, 2.0f, 3);
  const auto b = UniformRects(2500, region, 2.0f, 4);
  RTree ta = f.Build(a, 32, "a");
  const DatasetRef db = f.Dataset(b, "b");
  CollectingSink sink;
  auto stats = PQJoinIndexStream(ta, db, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
  EXPECT_EQ(stats->index_pages_read, ta.node_count());
}

TEST(PQJoin, QueueMemoryIsTracked) {
  PQJoinFixture f;
  const RectF region(0, 0, 1000, 1000);
  const auto a = ClusteredRects(30000, region, 20, 12.0f, 0.5f, 5);
  const auto b = ClusteredRects(30000, region, 20, 12.0f, 0.5f, 6);
  RTree ta = f.Build(a, 400, "a");
  RTree tb = f.Build(b, 400, "b");
  CountingSink sink;
  auto stats = PQJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->max_queue_bytes, 0u);
  // Table 3's observation: queues are a tiny fraction of the data.
  EXPECT_LT(stats->max_queue_bytes,
            (a.size() + b.size()) * sizeof(RectF) / 4);
  EXPECT_GT(stats->max_sweep_bytes, 0u);
}

TEST(PQJoin, MoreRandomIoThanSt) {
  // PQ's defining weakness (§6.2): it reads index pages in sweep order,
  // not layout order, so a much larger share of its reads is random than
  // for ST's depth-first traversal of the same bulk-loaded trees.
  PQJoinFixture f;
  const RectF region(0, 0, 1000, 1000);
  const auto a = UniformRects(40000, region, 0.5f, 7);
  const auto b = UniformRects(40000, region, 0.5f, 8);
  RTree ta = f.Build(a, 100, "a");
  RTree tb = f.Build(b, 100, "b");

  f.td.disk.ResetStats();
  CountingSink pq_sink;
  auto pq = PQJoin(ta, tb, &f.td.disk, JoinOptions(), &pq_sink);
  ASSERT_TRUE(pq.ok());
  const DiskStats pq_disk = pq->disk;

  f.td.disk.ResetStats();
  CountingSink st_sink;
  auto st = STJoin(ta, tb, &f.td.disk, JoinOptions(), &st_sink);
  ASSERT_TRUE(st.ok());

  // PQ issues fewer requests but a clearly larger random fraction...
  auto random_share = [](const DiskStats& d) {
    return static_cast<double>(d.random_read_requests) /
           static_cast<double>(d.read_requests);
  };
  EXPECT_GT(random_share(pq_disk), random_share(st->disk));
  // ...and in absolute modeled time its I/O is the slower of the two —
  // the estimated-vs-observed inversion of Figure 2.
  EXPECT_GT(pq_disk.io_seconds, st->disk.io_seconds);
  // With the paper's pool both trees fit, so ST touches each page at most
  // once too — PQ never touches more.
  EXPECT_LE(pq_disk.pages_read, st->disk.pages_read);
}

TEST(PQJoin, EmptySides) {
  PQJoinFixture f;
  RTree ta = f.Build(UniformRects(500, RectF(0, 0, 10, 10), 1.0f, 9), 32, "a");
  RTree tb = f.Build({}, 32, "b");
  CountingSink sink;
  auto stats = PQJoin(ta, tb, &f.td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_count, 0u);
}

TEST(PQJoin, AgreesWithIndexStreamOnSameData) {
  // The unified property: the same join through different input
  // representations yields identical results.
  PQJoinFixture f;
  const RectF region(0, 0, 300, 300);
  const auto a = UniformRects(3000, region, 1.5f, 10);
  const auto b = UniformRects(3000, region, 1.5f, 11);
  RTree ta = f.Build(a, 32, "a");
  RTree tb = f.Build(b, 32, "b");
  const DatasetRef db = f.Dataset(b, "b.stream");

  CollectingSink s1, s2;
  ASSERT_TRUE(PQJoin(ta, tb, &f.td.disk, JoinOptions(), &s1).ok());
  ASSERT_TRUE(
      PQJoinIndexStream(ta, db, &f.td.disk, JoinOptions(), &s2).ok());
  EXPECT_EQ(Sorted(s1.pairs()), Sorted(s2.pairs()));
}

}  // namespace
}  // namespace sj
