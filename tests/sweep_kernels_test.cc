// Scalar-vs-vectorized differential for the sweep/predicate kernels: the
// vectorized SoA paths (sweep/sweep_kernels.h, join/predicate_batch.h)
// must be bit-identical to the scalar reference on every input —
// including NaN, infinite, inverted and touching-edge geometry — at the
// kernel, structure, and whole-join levels, across thread counts.

#include "sweep/sweep_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <random>
#include <vector>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/tiger_gen.h"
#include "join/entry_sweep.h"
#include "join/predicate_batch.h"
#include "sweep/sweep_join.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::MakeDataset;
using testing_util::TestDisk;

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// RAII mode override (structures latch the mode at construction, so the
/// override must be in place before anything is built).
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(SweepKernelMode mode) { SetSweepKernelMode(mode); }
  ~ScopedKernelMode() { ResetSweepKernelMode(); }
};

/// A float that is usually ordinary but sometimes NaN/inf/huge/zero.
float EdgyFloat(std::mt19937_64& rng) {
  std::uniform_real_distribution<float> uniform(-100.0f, 100.0f);
  switch (rng() % 16) {
    case 0:
      return kNaN;
    case 1:
      return kInf;
    case 2:
      return -kInf;
    case 3:
      return 3e38f;
    case 4:
      return -3e38f;
    case 5:
      return 0.0f;
    default:
      return uniform(rng);
  }
}

TEST(KernelDifferential, ClassifySweepLanesMatchesScalar) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 200; ++round) {
    const size_t n = rng() % 40;  // Covers full blocks and ragged tails.
    std::vector<float> xlo(n), xhi(n), yhi(n);
    for (size_t i = 0; i < n; ++i) {
      xlo[i] = EdgyFloat(rng);
      xhi[i] = EdgyFloat(rng);
      yhi[i] = EdgyFloat(rng);
    }
    const float qxlo = EdgyFloat(rng), qxhi = EdgyFloat(rng),
                qylo = EdgyFloat(rng);
    std::vector<uint8_t> scalar(n, 0xcc), vectorized(n, 0x33);
    kernels::ClassifySweepLanes(SweepKernelMode::kScalar, xlo.data(),
                                xhi.data(), yhi.data(), n, qxlo, qxhi, qylo,
                                scalar.data());
    kernels::ClassifySweepLanes(SweepKernelMode::kVectorized, xlo.data(),
                                xhi.data(), yhi.data(), n, qxlo, qxhi, qylo,
                                vectorized.data());
    ASSERT_EQ(scalar, vectorized) << "round " << round << " n=" << n;
  }
}

TEST(KernelDifferential, ExpiryKeepMaskMatchesScalar) {
  std::mt19937_64 rng(11);
  for (int round = 0; round < 200; ++round) {
    const size_t n = rng() % 40;
    std::vector<float> yhi(n);
    for (size_t i = 0; i < n; ++i) yhi[i] = EdgyFloat(rng);
    const float y = EdgyFloat(rng);
    std::vector<uint8_t> scalar(n, 0xcc), vectorized(n, 0x33);
    kernels::ExpiryKeepMask(SweepKernelMode::kScalar, yhi.data(), n, y,
                            scalar.data());
    kernels::ExpiryKeepMask(SweepKernelMode::kVectorized, yhi.data(), n, y,
                            vectorized.data());
    ASSERT_EQ(scalar, vectorized) << "round " << round << " n=" << n;
  }
}

TEST(KernelDifferential, BatchRectOverlapMatchesScalar) {
  std::mt19937_64 rng(13);
  for (int round = 0; round < 200; ++round) {
    const size_t n = rng() % 40;
    std::vector<float> xlo(n), ylo(n), yhi(n);
    for (size_t i = 0; i < n; ++i) {
      xlo[i] = EdgyFloat(rng);  // Unsorted/NaN xlo: run-end must still match.
      ylo[i] = EdgyFloat(rng);
      yhi[i] = EdgyFloat(rng);
    }
    const float qxhi = EdgyFloat(rng), qylo = EdgyFloat(rng),
                qyhi = EdgyFloat(rng);
    std::vector<uint8_t> scalar(n, 0xcc), vectorized(n, 0x33);
    const size_t end_s =
        kernels::BatchRectOverlap(SweepKernelMode::kScalar, xlo.data(),
                                  ylo.data(), yhi.data(), n, qxhi, qylo, qyhi,
                                  scalar.data());
    const size_t end_v = kernels::BatchRectOverlap(
        SweepKernelMode::kVectorized, xlo.data(), ylo.data(), yhi.data(), n,
        qxhi, qylo, qyhi, vectorized.data());
    ASSERT_EQ(end_s, end_v) << "round " << round << " n=" << n;
    for (size_t k = 0; k < end_s; ++k) {
      ASSERT_EQ(scalar[k], vectorized[k])
          << "round " << round << " lane " << k;
    }
  }
}

/// Random rects with occasional NaN/inf *x* coordinates and inverted
/// intervals; y stays finite so OrderByYLo sorting is well-defined (the
/// kernel-level tests above cover NaN y).
std::vector<RectF> EdgyRects(size_t n, std::mt19937_64& rng) {
  std::uniform_real_distribution<float> pos(0.0f, 200.0f);
  std::uniform_real_distribution<float> len(0.0f, 5.0f);
  std::vector<RectF> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RectF r;
    r.ylo = pos(rng);
    r.yhi = r.ylo + len(rng);
    r.xlo = pos(rng);
    r.xhi = r.xlo + len(rng);
    switch (rng() % 16) {
      case 0:
        r.xlo = kNaN;
        break;
      case 1:
        r.xhi = kInf;
        break;
      case 2:
        r.xhi = r.xlo - 1.0f;  // Inverted x.
        break;
      case 3:
        r.yhi = r.ylo;  // Degenerate (touching-edge) y.
        break;
      case 4:
        r.xhi = r.xlo;  // Degenerate x.
        break;
      default:
        break;
    }
    r.id = static_cast<ObjectId>(i + 1);
    out.push_back(r);
  }
  return out;
}

template <typename Structure>
void StructureDifferential(uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto a = EdgyRects(600, rng);
  const auto b = EdgyRects(500, rng);
  const RectF extent(0, 0, 200, 200);

  auto run = [&](SweepKernelMode mode, std::vector<IdPair>* pairs) {
    ScopedKernelMode scoped(mode);
    auto sa_rects = a;
    auto sb_rects = b;
    std::sort(sa_rects.begin(), sa_rects.end(), OrderByYLo());
    std::sort(sb_rects.begin(), sb_rects.end(), OrderByYLo());
    VectorRectSource sa(&sa_rects), sb(&sb_rects);
    Structure active_a(extent, 32), active_b(extent, 32);
    SweepRunStats stats = SweepJoinRun(
        sa, sb, active_a, active_b,
        [&](const RectF& x, const RectF& y) {
          pairs->push_back({x.id, y.id});
        },
        [] {});
    return stats;
  };

  std::vector<IdPair> scalar_pairs, vector_pairs;
  const SweepRunStats s = run(SweepKernelMode::kScalar, &scalar_pairs);
  const SweepRunStats v = run(SweepKernelMode::kVectorized, &vector_pairs);
  // Identical pair *sequence* (not just set) and identical memory
  // accounting: the two modes must be indistinguishable from outside.
  EXPECT_EQ(scalar_pairs, vector_pairs);
  EXPECT_EQ(s.output_count, v.output_count);
  EXPECT_EQ(s.max_structure_bytes, v.max_structure_bytes);
  EXPECT_EQ(s.max_active, v.max_active);
}

TEST(StructureDifferential, ForwardSweepScalarVsVectorized) {
  for (uint64_t seed : {1u, 2u, 3u}) StructureDifferential<ForwardSweep>(seed);
}

TEST(StructureDifferential, StripedSweepScalarVsVectorized) {
  for (uint64_t seed : {4u, 5u, 6u}) StructureDifferential<StripedSweep>(seed);
}

TEST(StructureDifferential, SweepEntryListsScalarVsVectorized) {
  std::mt19937_64 rng(17);
  for (int round = 0; round < 20; ++round) {
    auto as = EdgyRects(150, rng);
    auto bs = EdgyRects(140, rng);
    // SweepEntryLists requires xlo-sorted inputs; drop NaN xlo (sorting
    // on NaN keys is undefined — kernel-level NaN behaviour is covered
    // above).
    auto finite_xlo = [](std::vector<RectF>* v) {
      v->erase(std::remove_if(v->begin(), v->end(),
                              [](const RectF& r) { return std::isnan(r.xlo); }),
               v->end());
      std::sort(v->begin(), v->end(), OrderByXLo());
    };
    finite_xlo(&as);
    finite_xlo(&bs);
    std::vector<IdPair> scalar_pairs, vector_pairs;
    {
      ScopedKernelMode scoped(SweepKernelMode::kScalar);
      SweepEntryLists(as, bs, [&](const RectF& x, const RectF& y) {
        scalar_pairs.push_back({x.id, y.id});
      });
    }
    {
      ScopedKernelMode scoped(SweepKernelMode::kVectorized);
      SweepEntryLists(as, bs, [&](const RectF& x, const RectF& y) {
        vector_pairs.push_back({x.id, y.id});
      });
    }
    ASSERT_EQ(scalar_pairs, vector_pairs) << "round " << round;
  }
}

Segment EdgySegment(std::mt19937_64& rng) {
  std::uniform_real_distribution<float> pos(-50.0f, 50.0f);
  Segment s(pos(rng), pos(rng), pos(rng), pos(rng));
  switch (rng() % 12) {
    case 0:
      s.x2 = s.x1;
      s.y2 = s.y1;  // Degenerate point.
      break;
    case 1:
      s.x1 = kNaN;
      break;
    case 2:
      s.y2 = kInf;
      break;
    default:
      break;
  }
  return s;
}

TEST(PredicateBatchDifferential, AllPredicatesMatchScalar) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<float> pos(-50.0f, 50.0f);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + rng() % 64;
    std::vector<Segment> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = EdgySegment(rng);
      switch (rng() % 6) {
        case 0:
          b[i] = a[i];  // Identical (collinear overlap).
          break;
        case 1:
          // Touching endpoint: b starts exactly where a ends.
          b[i] = Segment(a[i].x2, a[i].y2, pos(rng), pos(rng));
          break;
        case 2:
          // Collinear sub-segment of a (containment hits).
          b[i] = Segment((a[i].x1 + a[i].x2) / 2, (a[i].y1 + a[i].y2) / 2,
                         a[i].x2, a[i].y2);
          break;
        default:
          b[i] = EdgySegment(rng);
          break;
      }
    }
    for (const PredicateSpec spec :
         {PredicateSpec{Predicate::kIntersects, 0.0},
          PredicateSpec{Predicate::kDistanceWithin, 2.5},
          PredicateSpec{Predicate::kDistanceWithin, 0.0},
          PredicateSpec{Predicate::kContains, 0.0}}) {
      std::vector<uint8_t> scalar(n, 0xcc), vectorized(n, 0x33);
      EvaluateExactPredicateBatch(SweepKernelMode::kScalar, spec, a.data(),
                                  b.data(), n, scalar.data());
      EvaluateExactPredicateBatch(SweepKernelMode::kVectorized, spec, a.data(),
                                  b.data(), n, vectorized.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(scalar[i], vectorized[i])
            << spec.Describe() << " round " << round << " lane " << i;
        // Both must equal the per-pair reference evaluator.
        ASSERT_EQ(scalar[i] != 0, EvaluateExactPredicate(spec, a[i], b[i]))
            << spec.Describe() << " round " << round << " lane " << i;
      }
    }
  }
}

// Whole-join differential: SSSJ and PBSM over TIGER-style data, across
// thread counts and both kernel modes, must produce the identical pair
// set and identical sweep memory accounting. (Runs under the concurrency
// label, so the TSan tier exercises the threaded legs too.)
TEST(JoinKernelDifferential, ScalarAndVectorizedJoinsAreIdentical) {
  TigerGenerator gen(41);
  std::vector<RectF> a, b;
  gen.GenerateRoads(1500, &a);
  gen.GenerateHydro(1200, &b);

  struct RunResult {
    std::vector<IdPair> pairs;
    size_t max_sweep_bytes = 0;
  };
  auto run = [&](JoinAlgorithm algo, uint32_t threads, SweepKernelMode mode) {
    ScopedKernelMode scoped(mode);
    TestDisk td;
    std::vector<std::unique_ptr<Pager>> keep;
    const DatasetRef da = MakeDataset(&td, a, "a", &keep);
    const DatasetRef db = MakeDataset(&td, b, "b", &keep);
    SpatialJoiner joiner(&td.disk, JoinOptions());
    CollectingSink sink;
    auto stats = JoinQuery(joiner)
                     .Input(JoinInput::FromStream(da))
                     .Input(JoinInput::FromStream(db))
                     .Algorithm(algo)
                     .Threads(threads)
                     .Run(&sink);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    RunResult r;
    r.pairs = testing_util::Sorted(sink.pairs());
    if (stats.ok()) r.max_sweep_bytes = stats->max_sweep_bytes;
    return r;
  };

  for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM}) {
    const RunResult reference =
        run(algo, /*threads=*/1, SweepKernelMode::kScalar);
    ASSERT_FALSE(reference.pairs.empty());
    for (uint32_t threads : {1u, 2u, 8u}) {
      for (SweepKernelMode mode :
           {SweepKernelMode::kScalar, SweepKernelMode::kVectorized}) {
        const RunResult got = run(algo, threads, mode);
        EXPECT_EQ(got.pairs, reference.pairs)
            << ToString(algo) << " threads=" << threads;
        EXPECT_EQ(got.max_sweep_bytes, reference.max_sweep_bytes)
            << ToString(algo) << " threads=" << threads;
      }
    }
  }
}

TEST(KernelMode, IsaNameIsStable) {
  // Smoke: the ISA string resolves to one of the known names.
  const std::string isa = SweepKernelIsa();
  EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "neon" ||
              isa == "portable" || isa == "scalar-only")
      << isa;
}

}  // namespace
}  // namespace sj
