#include "core/cost_model.h"

#include <gtest/gtest.h>

namespace sj {
namespace {

TEST(CostModel, BreakEvenNearPaperSixtyPercent) {
  // §6.3: "it is advantageous to use the index only when the join involves
  // less than 60% of the leaf nodes" — derived from random ~ 10x
  // sequential and SSSJ ~ 6 sequential passes.
  const CostModel model(MachineModel::Machine1());
  EXPECT_GT(model.IndexBreakEvenFraction(), 0.45);
  EXPECT_LT(model.IndexBreakEvenFraction(), 0.70);
}

TEST(CostModel, PreferIndexBelowBreakEven) {
  const CostModel model(MachineModel::Machine1());
  const double f = model.IndexBreakEvenFraction();
  EXPECT_TRUE(model.PreferIndex(f * 0.5));
  EXPECT_FALSE(model.PreferIndex(f * 1.5));
  EXPECT_TRUE(model.PreferIndex(0.0));
}

TEST(CostModel, SSSJCostIsSixSequentialPasses) {
  const CostModel model(MachineModel::Machine1());
  const double seq_page =
      MachineModel::Machine1().PageTransferMs(kPageSize) * 1e-3;
  EXPECT_NEAR(model.SSSJSeconds(1000), 6.0 * 1000 * seq_page, 1e-9);
}

TEST(CostModel, SweepCpuVectorizedBeatsScalarAndIsMonotone) {
  const CostModel model(MachineModel::Machine1());
  // Zero lanes cost nothing in either mode.
  EXPECT_EQ(model.SweepCpuSeconds(0, /*vectorized=*/false), 0.0);
  EXPECT_EQ(model.SweepCpuSeconds(0, /*vectorized=*/true), 0.0);
  // The vectorized kernels are strictly cheaper per lane, and both terms
  // grow monotonically with the lane count.
  for (uint64_t lanes : {1000ull, 1000000ull, 1000000000ull}) {
    EXPECT_LT(model.SweepCpuSeconds(lanes, true),
              model.SweepCpuSeconds(lanes, false));
    EXPECT_LT(model.SweepCpuSeconds(lanes, true),
              model.SweepCpuSeconds(lanes * 10, true));
    EXPECT_LT(model.SweepCpuSeconds(lanes, false),
              model.SweepCpuSeconds(lanes * 10, false));
  }
  // The modeled ratio matches the pinned per-lane constants.
  EXPECT_NEAR(model.SweepCpuSeconds(1 << 20, false) /
                  model.SweepCpuSeconds(1 << 20, true),
              CostModel::kSweepScalarNsPerLane / CostModel::kSweepVectorNsPerLane,
              1e-9);
}

TEST(CostModel, GrantedMemoryPricingAddsMergePasses) {
  const CostModel model(MachineModel::Machine1());
  const uint64_t pages = 4000;  // ~32 MB of data.
  // A comfortable grant sorts in one merge pass: the memory-aware price
  // equals the classic six-pass estimate exactly.
  EXPECT_EQ(model.ExtraMergePasses(pages, 24u << 20), 0u);
  EXPECT_DOUBLE_EQ(model.SSSJSeconds(pages, 24u << 20),
                   model.SSSJSeconds(pages));
  // A tight grant needs extra merge passes, each one more read + write
  // pass over the data — strictly more expensive, monotonically so.
  EXPECT_GT(model.ExtraMergePasses(pages, 256u << 10), 0u);
  EXPECT_GT(model.SSSJSeconds(pages, 256u << 10), model.SSSJSeconds(pages));
  EXPECT_GE(model.SSSJSeconds(pages, 128u << 10),
            model.SSSJSeconds(pages, 1u << 20));
  // The pass count follows the fan-in arithmetic: cost rises by exactly
  // (1 + write_factor) sequential passes per extra merge pass.
  const double seq_page =
      MachineModel::Machine1().PageTransferMs(kPageSize) * 1e-3;
  const uint64_t extra = model.ExtraMergePasses(pages, 256u << 10);
  EXPECT_NEAR(model.SSSJSeconds(pages, 256u << 10),
              model.SSSJSeconds(pages) +
                  static_cast<double>(extra) *
                      (1.0 + MachineModel::Machine1().write_factor) *
                      static_cast<double>(pages) * seq_page,
              1e-9);
}

TEST(CostModel, StreamingPassFactorSharedByCostAndBreakEven) {
  // SSSJSeconds and IndexBreakEvenFraction must price the streaming plan
  // with the same pass count: the break-even rule is exactly "streaming
  // passes vs. the random/sequential read ratio". A drift between the two
  // would silently skew every indexed-vs-streamed planning decision.
  for (const MachineModel& m :
       {MachineModel::Machine1(), MachineModel::Machine2(),
        MachineModel::Machine3()}) {
    const CostModel model(m);
    EXPECT_DOUBLE_EQ(model.StreamingPassFactor(),
                     3.0 + 2.0 * m.write_factor)
        << m.name;
    const double seq_page = m.PageTransferMs(kPageSize) * 1e-3;
    EXPECT_NEAR(model.SSSJSeconds(1000),
                1000 * model.StreamingPassFactor() * seq_page, 1e-12)
        << m.name;
    EXPECT_NEAR(model.IndexBreakEvenFraction() *
                    m.RandomToSequentialReadRatio(kPageSize),
                model.StreamingPassFactor(), 1e-12)
        << m.name;
  }
}

TEST(CostModel, RefineSecondsBoundedByStoreScansAndCandidates) {
  const MachineModel m = MachineModel::Machine1();
  const CostModel model(m);
  const double rand_page =
      (m.avg_access_ms + m.PageTransferMs(kPageSize)) * 1e-3;
  // Few candidates against big stores: one page per candidate and side.
  EXPECT_NEAR(model.RefineSeconds(10, 1000, 1000, 1024), 20 * rand_page,
              1e-12);
  // Many candidates against small stores: batches do not share fetches,
  // so the bound is one store scan per batch and side — 98 batches of
  // 1024 over stores of 50/80 pages.
  EXPECT_NEAR(model.RefineSeconds(100000, 50, 80, 1024),
              (98 * 50 + 98 * 80) * rand_page, 1e-9);
  // Larger batches amortize the per-batch re-reads.
  EXPECT_LT(model.RefineSeconds(100000, 50, 80, 4096),
            model.RefineSeconds(100000, 50, 80, 256));
  EXPECT_DOUBLE_EQ(model.RefineSeconds(0, 1000, 1000, 1024), 0.0);
}

TEST(CostModel, PQCostUsesRandomReads) {
  const MachineModel m = MachineModel::Machine1();
  const CostModel model(m);
  const double rand_page = (m.avg_access_ms + m.PageTransferMs(kPageSize)) * 1e-3;
  EXPECT_NEAR(model.PQSeconds(1000), 1000 * rand_page, 1e-9);
}

TEST(CostModel, FullTraversalNeverBeatsStreaming) {
  // Consequence of the paper's analysis: a PQ join that touches the whole
  // index (the common, non-localized case) costs more I/O than SSSJ.
  for (const MachineModel& m :
       {MachineModel::Machine1(), MachineModel::Machine2(),
        MachineModel::Machine3()}) {
    const CostModel model(m);
    EXPECT_GT(model.PQSeconds(10000), model.SSSJSeconds(10000))
        << m.name;
  }
}

TEST(CostModel, CrossoverIsMonotone) {
  const CostModel model(MachineModel::Machine3());
  const uint64_t n = 50000;
  double prev = -1.0;
  bool crossed = false;
  for (double f = 0.0; f <= 1.0; f += 0.05) {
    const double cost = model.PQSeconds(static_cast<uint64_t>(f * n));
    EXPECT_GE(cost, prev);
    prev = cost;
    if (cost > model.SSSJSeconds(n)) crossed = true;
  }
  EXPECT_TRUE(crossed);
}

}  // namespace
}  // namespace sj
