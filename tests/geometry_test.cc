#include "geometry/rect.h"

#include <gtest/gtest.h>

#include "geometry/extent.h"

namespace sj {
namespace {

TEST(RectF, LayoutMatchesPaperRecord) {
  EXPECT_EQ(sizeof(RectF), 20u);
  EXPECT_EQ(sizeof(IdPair), 8u);
}

TEST(RectF, IntersectsBasic) {
  const RectF a(0, 0, 10, 10);
  EXPECT_TRUE(a.Intersects(RectF(5, 5, 15, 15)));
  EXPECT_TRUE(a.Intersects(RectF(-5, -5, 0, 0)));  // Corner touch counts.
  EXPECT_TRUE(a.Intersects(RectF(10, 0, 20, 10))); // Edge touch counts.
  EXPECT_FALSE(a.Intersects(RectF(10.001f, 0, 20, 10)));
  EXPECT_FALSE(a.Intersects(RectF(0, 10.001f, 10, 20)));
  EXPECT_TRUE(a.Intersects(RectF(2, 2, 3, 3)));  // Containment.
  EXPECT_TRUE(RectF(2, 2, 3, 3).Intersects(a)); // Symmetric.
}

TEST(RectF, DegenerateRectsIntersect) {
  const RectF point(5, 5, 5, 5);
  EXPECT_TRUE(point.Intersects(point));
  EXPECT_TRUE(point.Intersects(RectF(0, 0, 10, 10)));
  const RectF hline(0, 5, 10, 5);
  const RectF vline(5, 0, 5, 10);
  EXPECT_TRUE(hline.Intersects(vline));
  EXPECT_FALSE(hline.Intersects(RectF(0, 6, 10, 6)));
}

TEST(RectF, IntersectsXIgnoresY) {
  const RectF a(0, 0, 10, 10);
  EXPECT_TRUE(a.IntersectsX(RectF(5, 100, 15, 200)));
  EXPECT_FALSE(a.IntersectsX(RectF(11, 0, 20, 10)));
}

TEST(RectF, ContainsAndContainsPoint) {
  const RectF a(0, 0, 10, 10);
  EXPECT_TRUE(a.Contains(RectF(0, 0, 10, 10)));
  EXPECT_TRUE(a.Contains(RectF(1, 1, 9, 9)));
  EXPECT_FALSE(a.Contains(RectF(1, 1, 11, 9)));
  EXPECT_TRUE(a.ContainsPoint(0, 0));
  EXPECT_TRUE(a.ContainsPoint(10, 10));
  EXPECT_FALSE(a.ContainsPoint(10.5f, 5));
}

TEST(RectF, AreaAndEnlargement) {
  const RectF a(0, 0, 4, 5);
  EXPECT_DOUBLE_EQ(a.Area(), 20.0);
  EXPECT_DOUBLE_EQ(RectF(1, 1, 1, 1).Area(), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(RectF(1, 1, 2, 2)), 0.0);
  // Extending (0,0,4,5) to cover (0,0,8,5) doubles the area.
  EXPECT_DOUBLE_EQ(a.Enlargement(RectF(4, 0, 8, 5)), 20.0);
}

TEST(RectF, ExtendToAndEmpty) {
  RectF box = RectF::Empty();
  EXPECT_FALSE(box.Valid());
  box.ExtendTo(RectF(2, 3, 4, 5));
  box.ExtendTo(RectF(-1, 4, 3, 9));
  EXPECT_TRUE(box.Valid());
  EXPECT_EQ(box.xlo, -1);
  EXPECT_EQ(box.ylo, 3);
  EXPECT_EQ(box.xhi, 4);
  EXPECT_EQ(box.yhi, 9);
}

TEST(RectF, IntersectionWith) {
  const RectF a(0, 0, 10, 10), b(5, 5, 15, 15);
  const RectF w = a.IntersectionWith(b);
  EXPECT_EQ(w.xlo, 5);
  EXPECT_EQ(w.ylo, 5);
  EXPECT_EQ(w.xhi, 10);
  EXPECT_EQ(w.yhi, 10);
}

TEST(RectF, ValidRejectsNanAndInverted) {
  EXPECT_FALSE(RectF(5, 0, 4, 10).Valid());
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(RectF(nan, 0, 4, 10).Valid());
  EXPECT_FALSE(RectF(0, nan, 4, nan).Valid());
}

TEST(Orderings, YLoThenId) {
  const OrderByYLo less;
  EXPECT_TRUE(less(RectF(0, 1, 1, 2, 5), RectF(0, 2, 1, 3, 1)));
  EXPECT_TRUE(less(RectF(0, 1, 1, 2, 1), RectF(9, 1, 9, 9, 2)));  // Tie by id.
  EXPECT_FALSE(less(RectF(0, 1, 1, 2, 2), RectF(9, 1, 9, 9, 1)));
}

TEST(ComputeExtent, CoversAll) {
  const std::vector<RectF> rects = {RectF(0, 0, 1, 1), RectF(5, -2, 6, 0),
                                    RectF(-3, 4, -1, 8)};
  const RectF e = ComputeExtent(rects);
  EXPECT_EQ(e.xlo, -3);
  EXPECT_EQ(e.ylo, -2);
  EXPECT_EQ(e.xhi, 6);
  EXPECT_EQ(e.yhi, 8);
  EXPECT_FALSE(ComputeExtent({}).Valid());
}

}  // namespace
}  // namespace sj
