// The SpatialService scheduler: admission control against one global
// memory budget (FIFO queueing, degraded admission, rejection), the
// unified Status taxonomy on every failure path, SubmittedQuery handle
// semantics (Wait/Cancel/Result), and the central differential property —
// N queries run concurrently through one service compute exactly what
// each computes standalone, across every algorithm, with the global peak
// never exceeding the budget.

#include "service/spatial_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

/// A sink whose first Emit blocks until the test releases it — the lever
/// for holding a query "running" (budget occupied) while others queue.
class BlockingSink final : public JoinSink {
 public:
  void Emit(ObjectId, ObjectId) override {
    if (!released_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(mu_);
      entered_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_.load(); });
    }
    ++count_;
  }

  /// Blocks the test until the query is inside Emit (budget held).
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  uint64_t count() const { return count_; }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  std::atomic<bool> released_{false};
  uint64_t count_ = 0;
};

class ServiceTest : public ::testing::Test {
 protected:
  RTree BuildTree(const std::vector<RectF>& rects, const std::string& name) {
    pagers_.push_back(td_.NewPager("tree." + name));
    Pager* tree_pager = pagers_.back().get();
    auto scratch = td_.NewPager("scratch." + name);
    const DatasetRef ref = MakeDataset(&td_, rects, name, &pagers_);
    RTreeParams params;
    params.max_entries = 32;
    auto tree = RTree::BulkLoadHilbert(tree_pager, ref.range, scratch.get(),
                                       params, 1 << 22);
    SJ_CHECK(tree.ok());
    pagers_.push_back(std::move(scratch));
    return std::move(tree).value();
  }

  DatasetRef Dataset(const std::vector<RectF>& rects,
                     const std::string& name) {
    return MakeDataset(&td_, rects, name, &pagers_);
  }

  TestDisk td_;
  std::vector<std::unique_ptr<Pager>> pagers_;
};

// ---------------------------------------------------------------------------
// The differential property: a mixed concurrent workload through one
// service — every algorithm, mixed budgets, a shared buffer pool, fewer
// full-budget slots than queries — produces exactly the standalone
// results, and the global arbiter's peak stays under the global budget.
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, ConcurrentMatchesSerialAcrossAlgorithms) {
  const RectF region(0, 0, 120, 120);
  const auto a = UniformRects(1200, region, 2.0f, 21);
  const auto b = UniformRects(1100, region, 2.2f, 22);
  const auto expected = BruteForcePairs(a, b);
  RTree ta = BuildTree(a, "a");
  RTree tb = BuildTree(b, "b");
  SpatialJoiner joiner(&td_.disk, JoinOptions());
  const JoinInput ia = JoinInput::FromRTree(&ta);
  const JoinInput ib = JoinInput::FromRTree(&tb);

  const std::vector<JoinAlgorithm> algos = {
      JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM, JoinAlgorithm::kST,
      JoinAlgorithm::kPQ, JoinAlgorithm::kAuto};

  ServiceOptions so;
  so.global_memory_bytes = 20u << 20;  // Two full 8 MB queries at a time.
  so.worker_threads = 4;
  so.buffer_pool_pages = 256;
  so.degraded_min_bytes = 2u << 20;
  SpatialService service(so);

  std::vector<CollectingSink> sinks(algos.size());
  std::vector<SubmittedQuery> handles;
  for (size_t i = 0; i < algos.size(); ++i) {
    JoinQuery q(joiner);
    q.Input(ia).Input(ib).Algorithm(algos[i]).MemoryBytes(8u << 20);
    handles.push_back(service.Submit(q, &sinks[i]));
  }
  for (size_t i = 0; i < algos.size(); ++i) {
    const auto& result = handles[i].Result();
    ASSERT_TRUE(result.ok())
        << ToString(algos[i]) << ": " << result.status().ToString();
    EXPECT_EQ(Sorted(sinks[i].pairs()), expected) << ToString(algos[i]);
    EXPECT_GT(handles[i].granted_bytes(), 0u);
    if (algos[i] == JoinAlgorithm::kST) {
      // ST read its index pages through the *shared* pool, attributed to
      // this query.
      EXPECT_GT(result->pool_requests, 0u);
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, algos.size());
  EXPECT_EQ(stats.admitted_full + stats.admitted_degraded, algos.size());
  EXPECT_EQ(stats.rejected, 0u);
  // The hard invariant of the tentpole: the sum of concurrently admitted
  // budgets can never exceed the global one.
  EXPECT_LE(stats.global_peak_bytes, so.global_memory_bytes);
  EXPECT_EQ(stats.global_in_use_bytes, 0u);  // Everything released.
  EXPECT_GT(stats.pool.requests, 0u);        // ST went through the pool.
}

// ---------------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, SubFloorBudgetIsFailedPrecondition) {
  const auto a = UniformRects(50, RectF(0, 0, 10, 10), 1.0f, 3);
  const DatasetRef da = Dataset(a, "a");
  SpatialJoiner joiner(&td_.disk, JoinOptions());
  SpatialService service;  // Inline defaults.
  CollectingSink sink;
  JoinQuery q(joiner);
  q.Input(JoinInput::FromStream(da))
      .Input(JoinInput::FromStream(da))
      .MemoryBytes(kMinMemoryBytes - 1);
  const auto result = service.Run(q, &sink);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("kMinMemoryBytes"),
            std::string::npos)
      << result.status().message();
  EXPECT_EQ(service.stats().rejected, 1u);
}

TEST_F(ServiceTest, RequestAboveGlobalBudgetIsResourceExhausted) {
  const auto a = UniformRects(50, RectF(0, 0, 10, 10), 1.0f, 3);
  const DatasetRef da = Dataset(a, "a");
  SpatialJoiner joiner(&td_.disk, JoinOptions());
  ServiceOptions so;
  so.global_memory_bytes = 8u << 20;
  SpatialService service(so);
  CollectingSink sink;
  JoinQuery q(joiner);
  q.Input(JoinInput::FromStream(da))
      .Input(JoinInput::FromStream(da))
      .MemoryBytes(32u << 20);  // No amount of queueing satisfies this.
  const auto result = service.Run(q, &sink);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Admission control: queueing, degraded admission, overflow, deadlines,
// cancellation. Each test holds the budget with a query blocked inside
// its sink.
// ---------------------------------------------------------------------------

class ContendedServiceTest : public ServiceTest {
 protected:
  void SetUp() override {
    const RectF region(0, 0, 40, 40);
    a_ = UniformRects(300, region, 2.0f, 31);
    b_ = UniformRects(280, region, 2.0f, 32);
    expected_ = BruteForcePairs(a_, b_);
    da_ = Dataset(a_, "ca");
    db_ = Dataset(b_, "cb");
    joiner_.emplace(&td_.disk, JoinOptions());
  }

  /// A query requesting `budget` bytes over the shared fixture data.
  JoinQuery MakeQuery(size_t budget) {
    JoinQuery q(*joiner_);
    q.Input(JoinInput::FromStream(da_))
        .Input(JoinInput::FromStream(db_))
        .Algorithm(JoinAlgorithm::kSSSJ)
        .MemoryBytes(budget);
    return q;
  }

  std::vector<RectF> a_, b_;
  std::vector<IdPair> expected_;
  DatasetRef da_, db_;
  std::optional<SpatialJoiner> joiner_;
};

TEST_F(ContendedServiceTest, QueuedQueryRunsWhenBudgetFrees) {
  ServiceOptions so;
  so.global_memory_bytes = 8u << 20;
  so.worker_threads = 2;
  SpatialService service(so);

  BlockingSink blocker;
  SubmittedQuery holder = service.Submit(MakeQuery(8u << 20), &blocker);
  blocker.WaitEntered();  // The whole budget is now held.

  SubmitOptions no_degrade;
  no_degrade.allow_degraded = false;
  CollectingSink sink;
  SubmittedQuery waiter =
      service.Submit(MakeQuery(8u << 20), &sink, no_degrade);
  EXPECT_FALSE(waiter.done());  // Queued: nothing to run it with.

  blocker.Release();
  const auto& result = waiter.Result();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(sink.pairs()), expected_);
  ASSERT_TRUE(holder.Result().ok());
  EXPECT_EQ(blocker.count(), expected_.size());
}

TEST_F(ContendedServiceTest, DegradedAdmissionUsesTheFreeBudget) {
  ServiceOptions so;
  so.global_memory_bytes = 12u << 20;
  so.worker_threads = 2;
  so.degraded_min_bytes = 2u << 20;
  SpatialService service(so);

  BlockingSink blocker;
  SubmittedQuery holder = service.Submit(MakeQuery(8u << 20), &blocker);
  blocker.WaitEntered();  // 4 MB free.

  CollectingSink sink;
  SubmittedQuery degraded = service.Submit(MakeQuery(8u << 20), &sink);
  const auto& result = degraded.Result();  // Runs while the holder blocks.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(degraded.degraded());
  EXPECT_EQ(degraded.granted_bytes(), 4u << 20);
  EXPECT_EQ(Sorted(sink.pairs()), expected_);  // Identical results.
  EXPECT_EQ(service.stats().admitted_degraded, 1u);

  blocker.Release();
  ASSERT_TRUE(holder.Result().ok());
}

TEST_F(ContendedServiceTest, QueueOverflowIsResourceExhausted) {
  ServiceOptions so;
  so.global_memory_bytes = 8u << 20;
  so.worker_threads = 1;
  so.admission_queue_limit = 1;
  SpatialService service(so);

  BlockingSink blocker;
  SubmittedQuery holder = service.Submit(MakeQuery(8u << 20), &blocker);
  blocker.WaitEntered();

  SubmitOptions no_degrade;
  no_degrade.allow_degraded = false;
  CollectingSink s1, s2;
  SubmittedQuery queued = service.Submit(MakeQuery(8u << 20), &s1, no_degrade);
  SubmittedQuery rejected =
      service.Submit(MakeQuery(8u << 20), &s2, no_degrade);
  EXPECT_TRUE(rejected.done());  // Rejected synchronously.
  EXPECT_EQ(rejected.Result().status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected, 1u);

  blocker.Release();
  ASSERT_TRUE(queued.Result().ok());
  ASSERT_TRUE(holder.Result().ok());
}

TEST_F(ContendedServiceTest, QueueDeadlineIsDeadlineExceeded) {
  ServiceOptions so;
  so.global_memory_bytes = 8u << 20;
  so.worker_threads = 1;
  SpatialService service(so);

  BlockingSink blocker;
  SubmittedQuery holder = service.Submit(MakeQuery(8u << 20), &blocker);
  blocker.WaitEntered();

  SubmitOptions opts;
  opts.allow_degraded = false;
  opts.queue_deadline_seconds = 0.05;
  CollectingSink sink;
  SubmittedQuery starved = service.Submit(MakeQuery(8u << 20), &sink, opts);
  const auto& result = starved.Result();  // The reaper expires it.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(service.stats().deadline_expired, 1u);

  blocker.Release();
  ASSERT_TRUE(holder.Result().ok());
}

TEST_F(ContendedServiceTest, CancelWorksOnQueuedNotRunning) {
  ServiceOptions so;
  so.global_memory_bytes = 8u << 20;
  so.worker_threads = 1;
  SpatialService service(so);

  BlockingSink blocker;
  SubmittedQuery holder = service.Submit(MakeQuery(8u << 20), &blocker);
  blocker.WaitEntered();
  EXPECT_FALSE(holder.Cancel());  // Running: too late to cancel.

  SubmitOptions no_degrade;
  no_degrade.allow_degraded = false;
  CollectingSink sink;
  SubmittedQuery queued = service.Submit(MakeQuery(8u << 20), &sink, no_degrade);
  EXPECT_TRUE(queued.Cancel());
  EXPECT_FALSE(queued.Cancel());  // Idempotent: already resolved.
  EXPECT_EQ(queued.Result().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 1u);

  blocker.Release();
  ASSERT_TRUE(holder.Result().ok());
  EXPECT_TRUE(sink.pairs().empty());  // Never ran.
}

// The reaper regression: an inadmissible head that expires must release
// the admittable queries behind it *at its deadline*, not at the next
// submit or completion (there is neither here — the holder stays blocked
// the whole time).
TEST_F(ContendedServiceTest, ExpiredHeadReleasesQueriesBehindItAtDeadline) {
  ServiceOptions so;
  so.global_memory_bytes = 8u << 20;
  so.worker_threads = 2;
  SpatialService service(so);

  BlockingSink blocker;
  SubmittedQuery holder = service.Submit(MakeQuery(6u << 20), &blocker);
  blocker.WaitEntered();  // 2 MB free.

  SubmitOptions head_opts;
  head_opts.allow_degraded = false;
  head_opts.queue_deadline_seconds = 0.05;
  CollectingSink head_sink, small_sink;
  // Inadmissible head (needs the full 8 MB) with a short deadline ...
  SubmittedQuery big = service.Submit(MakeQuery(8u << 20), &head_sink,
                                      head_opts);
  // ... and an admittable query stuck behind it (strict FIFO).
  SubmitOptions small_opts;
  small_opts.allow_degraded = false;
  SubmittedQuery small =
      service.Submit(MakeQuery(2u << 20), &small_sink, small_opts);

  EXPECT_EQ(big.Result().status().code(), StatusCode::kDeadlineExceeded);
  const auto& small_result = small.Result();  // Admitted at big's deadline.
  ASSERT_TRUE(small_result.ok()) << small_result.status().ToString();
  EXPECT_EQ(Sorted(small_sink.pairs()), expected_);
  EXPECT_GE(service.stats().deadline_expired, 1u);

  blocker.Release();
  ASSERT_TRUE(holder.Result().ok());
}

// Cancelling an inadmissible head must free its queue slot and admit the
// queries behind it immediately (again: no submit/completion happens
// until they finish).
TEST_F(ContendedServiceTest, CancelledHeadReleasesQueriesBehindIt) {
  ServiceOptions so;
  so.global_memory_bytes = 8u << 20;
  so.worker_threads = 2;
  SpatialService service(so);

  BlockingSink blocker;
  SubmittedQuery holder = service.Submit(MakeQuery(6u << 20), &blocker);
  blocker.WaitEntered();  // 2 MB free.

  SubmitOptions no_degrade;
  no_degrade.allow_degraded = false;
  CollectingSink head_sink, small_sink;
  SubmittedQuery big = service.Submit(MakeQuery(8u << 20), &head_sink,
                                      no_degrade);
  SubmittedQuery small =
      service.Submit(MakeQuery(2u << 20), &small_sink, no_degrade);
  EXPECT_FALSE(small.done());

  EXPECT_TRUE(big.Cancel());
  const auto& small_result = small.Result();  // Admitted by the cancel.
  ASSERT_TRUE(small_result.ok()) << small_result.status().ToString();
  EXPECT_EQ(Sorted(small_sink.pairs()), expected_);
  EXPECT_EQ(service.stats().cancelled, 1u);

  blocker.Release();
  ASSERT_TRUE(holder.Result().ok());
}

// The admission-commit TOCTOU regression: a Cancel() racing the admission
// pass that a completion triggers must either win (query never runs, sink
// stays empty) or lose (query runs to its normal result) — never both
// halves (a "cancelled" query that still executes).
TEST_F(ContendedServiceTest, CancelRacingAdmissionNeverRunsCancelledQuery) {
  for (int round = 0; round < 25; ++round) {
    ServiceOptions so;
    so.global_memory_bytes = 8u << 20;
    so.worker_threads = 2;
    SpatialService service(so);

    BlockingSink blocker;
    SubmittedQuery holder = service.Submit(MakeQuery(8u << 20), &blocker);
    blocker.WaitEntered();

    SubmitOptions no_degrade;
    no_degrade.allow_degraded = false;
    CollectingSink sink;
    SubmittedQuery queued =
        service.Submit(MakeQuery(8u << 20), &sink, no_degrade);

    bool cancel_won = false;
    std::thread canceller(
        [&queued, &cancel_won] { cancel_won = queued.Cancel(); });
    blocker.Release();  // Completion re-runs admission, racing the cancel.
    canceller.join();

    const auto& result = queued.Result();
    if (cancel_won) {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
      EXPECT_TRUE(sink.pairs().empty()) << "cancelled query executed";
    } else {
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Sorted(sink.pairs()), expected_);
    }
    ASSERT_TRUE(holder.Result().ok());
  }
}

// Handles outliving the service: Cancel() after (or racing) destruction
// must not touch the dead service — the destructor's drain resolves the
// ticket, and the gate blocks the callback path.
TEST_F(ContendedServiceTest, CancelOnHandleOutlivingServiceIsSafe) {
  SubmittedQuery queued;
  CollectingSink sink;
  {
    // The blocker must outlive the service: its destructor's drain runs
    // the held query to completion, emitting into the blocker.
    BlockingSink blocker;
    ServiceOptions so;
    so.global_memory_bytes = 8u << 20;
    so.worker_threads = 1;
    SpatialService service(so);
    SubmittedQuery holder = service.Submit(MakeQuery(8u << 20), &blocker);
    blocker.WaitEntered();
    SubmitOptions no_degrade;
    no_degrade.allow_degraded = false;
    queued = service.Submit(MakeQuery(8u << 20), &sink, no_degrade);
    blocker.Release();
    queued.Cancel();  // May race the drain; both orders are fine.
  }  // Service destroyed; the handle lives on.
  EXPECT_FALSE(queued.Cancel());  // Long dead: nothing to cancel.
  const auto& result = queued.Result();
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    EXPECT_TRUE(sink.pairs().empty());
  } else {
    EXPECT_EQ(Sorted(sink.pairs()), expected_);  // Cancel lost the race.
  }
}

TEST_F(ContendedServiceTest, CancelRacingServiceDestructionIsSafe) {
  for (int round = 0; round < 25; ++round) {
    auto service = std::make_unique<SpatialService>([] {
      ServiceOptions so;
      so.global_memory_bytes = 8u << 20;
      so.worker_threads = 1;
      return so;
    }());
    BlockingSink blocker;
    SubmittedQuery holder = service->Submit(MakeQuery(8u << 20), &blocker);
    blocker.WaitEntered();
    SubmitOptions no_degrade;
    no_degrade.allow_degraded = false;
    CollectingSink sink;
    SubmittedQuery queued =
        service->Submit(MakeQuery(8u << 20), &sink, no_degrade);

    // Destruction's drain and the handle's Cancel race for the ticket;
    // whichever wins, the loser must not touch freed memory (TSan/ASan
    // guard this tier) and the query must never run.
    std::thread destroyer([&service] { service.reset(); });
    std::thread canceller([&queued] { queued.Cancel(); });
    blocker.Release();
    destroyer.join();
    canceller.join();

    // Three legal outcomes: cancelled by the handle, cancelled by the
    // drain, or admitted by the holder's completion before either — but
    // never a cancelled query that executed anyway.
    const auto& result = queued.Result();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
      EXPECT_TRUE(sink.pairs().empty());
    } else {
      EXPECT_EQ(Sorted(sink.pairs()), expected_);
    }
    ASSERT_TRUE(holder.Result().ok());
  }
}

TEST_F(ContendedServiceTest, ShutdownCancelsQueuedAndDrainsRunning) {
  auto service = std::make_unique<SpatialService>([] {
    ServiceOptions so;
    so.global_memory_bytes = 8u << 20;
    so.worker_threads = 1;
    return so;
  }());

  BlockingSink blocker;
  SubmittedQuery holder = service->Submit(MakeQuery(8u << 20), &blocker);
  blocker.WaitEntered();
  SubmitOptions no_degrade;
  no_degrade.allow_degraded = false;
  CollectingSink sink;
  SubmittedQuery queued =
      service->Submit(MakeQuery(8u << 20), &sink, no_degrade);

  // Destroy the service while one query runs and one is queued: the
  // queued one resolves to Cancelled immediately, the running one is
  // drained to completion.
  std::thread destroyer([&service] { service.reset(); });
  EXPECT_EQ(queued.Result().status().code(), StatusCode::kCancelled);
  blocker.Release();
  destroyer.join();
  ASSERT_TRUE(holder.Result().ok());
  EXPECT_EQ(blocker.count(), expected_.size());
}

// ---------------------------------------------------------------------------
// Inline mode and the Run() wrapper.
// ---------------------------------------------------------------------------

TEST_F(ContendedServiceTest, InlineServiceMatchesJoinQueryRun) {
  CollectingSink direct_sink;
  auto direct = MakeQuery(8u << 20).Run(&direct_sink);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  SpatialService service;  // worker_threads = 0: runs on this thread.
  CollectingSink service_sink;
  auto via_service = service.Run(MakeQuery(8u << 20), &service_sink);
  ASSERT_TRUE(via_service.ok()) << via_service.status().ToString();
  EXPECT_EQ(Sorted(service_sink.pairs()), Sorted(direct_sink.pairs()));
  EXPECT_EQ(Sorted(service_sink.pairs()), expected_);
  EXPECT_EQ(via_service->output_count, direct->output_count);
  EXPECT_EQ(service.stats().admitted_full, 1u);
}

// ---------------------------------------------------------------------------
// Stress: many concurrent submitters against a small budget and a tiny
// shared pool (the TSan target for the scheduler + pool combination).
// ---------------------------------------------------------------------------

TEST_F(ContendedServiceTest, ConcurrentSubmittersStress) {
  ServiceOptions so;
  so.global_memory_bytes = 16u << 20;
  so.worker_threads = 4;
  so.buffer_pool_pages = 32;
  so.degraded_min_bytes = 1u << 20;
  so.default_queue_deadline_seconds = 60.0;
  SpatialService service(so);

  constexpr int kSubmitters = 6;
  constexpr int kPerThread = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        CollectingSink sink;
        // Mixed budgets: some full-slot, some small.
        const size_t budget =
            ((t + i) % 2 == 0) ? (8u << 20) : (2u << 20);
        const auto result = service.Run(MakeQuery(budget), &sink);
        if (!result.ok() || Sorted(sink.pairs()) != expected_) ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kSubmitters) * kPerThread);
  EXPECT_EQ(stats.admitted_full + stats.admitted_degraded, stats.submitted);
  EXPECT_LE(stats.global_peak_bytes, so.global_memory_bytes);
  EXPECT_EQ(stats.global_in_use_bytes, 0u);
}

}  // namespace
}  // namespace sj
