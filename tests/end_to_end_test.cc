// Integration test: a miniature version of the paper's whole pipeline —
// generate a TIGER-like dataset pair, build the paper's packed indexes,
// run all algorithms, and assert the *qualitative* results of the study
// (with generous margins; the quantitative tables live in bench/).

#include <gtest/gtest.h>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/tiger_gen.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::MakeDataset;
using testing_util::TestDisk;

class EndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    // ~NJ at 1/8 scale.
    TigerGenerator gen(/*seed=*/404);
    gen.GenerateRoads(52000, &roads_);
    gen.GenerateHydro(6400, &hydro_);
    roads_ref_ = MakeDataset(&td_, roads_, "roads", &pagers_);
    hydro_ref_ = MakeDataset(&td_, hydro_, "hydro", &pagers_);

    auto build = [&](const DatasetRef& ref, const char* name) {
      pagers_.push_back(td_.NewPager(std::string("tree.") + name));
      Pager* tree_pager = pagers_.back().get();
      auto scratch = td_.NewPager("scratch");
      auto tree = RTree::BulkLoadHilbert(tree_pager, ref.range, scratch.get(),
                                         RTreeParams(), 24u << 20);
      SJ_CHECK(tree.ok());
      pagers_.push_back(std::move(scratch));
      return std::move(tree).value();
    };
    roads_tree_.emplace(build(roads_ref_, "roads"));
    hydro_tree_.emplace(build(hydro_ref_, "hydro"));
    td_.disk.ResetStats();
  }

  JoinStats Run(JoinAlgorithm algo) {
    td_.disk.ResetStats();
    JoinOptions options;
    options.buffer_pool_pages = 64;  // Scaled pool, as in the benches.
    SpatialJoiner joiner(&td_.disk, options);
    const bool indexed =
        algo == JoinAlgorithm::kST || algo == JoinAlgorithm::kPQ;
    CountingSink sink;
    auto stats = JoinQuery(joiner)
                     .Input(indexed ? JoinInput::FromRTree(&*roads_tree_)
                                    : JoinInput::FromStream(roads_ref_))
                     .Input(indexed ? JoinInput::FromRTree(&*hydro_tree_)
                                    : JoinInput::FromStream(hydro_ref_))
                     .Algorithm(algo)
                     .Run(&sink);
    SJ_CHECK(stats.ok()) << stats.status().ToString();
    return *stats;
  }

  TestDisk td_{MachineModel::Machine3()};
  std::vector<RectF> roads_, hydro_;
  DatasetRef roads_ref_, hydro_ref_;
  std::optional<RTree> roads_tree_, hydro_tree_;
  std::vector<std::unique_ptr<Pager>> pagers_;
};

TEST_F(EndToEnd, AllAlgorithmsAgreeOnOutputCount) {
  const uint64_t expected = Run(JoinAlgorithm::kSSSJ).output_count;
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(Run(JoinAlgorithm::kPBSM).output_count, expected);
  EXPECT_EQ(Run(JoinAlgorithm::kST).output_count, expected);
  EXPECT_EQ(Run(JoinAlgorithm::kPQ).output_count, expected);
}

TEST_F(EndToEnd, Table4Shape_PqOptimalStAtLeast) {
  const uint64_t lower_bound =
      roads_tree_->node_count() + hydro_tree_->node_count();
  const JoinStats pq = Run(JoinAlgorithm::kPQ);
  EXPECT_EQ(pq.index_pages_read, lower_bound);
  const JoinStats st = Run(JoinAlgorithm::kST);
  EXPECT_GE(st.index_pages_read, lower_bound);
}

TEST_F(EndToEnd, Figure2Shape_EstimateInvertsObserved) {
  // Estimated (requests x random read): PQ <= ST. Observed: ST's I/O
  // profits from the bulk-loaded layout far more than PQ's.
  const MachineModel m = MachineModel::Machine3();
  const JoinStats pq = Run(JoinAlgorithm::kPQ);
  const JoinStats st = Run(JoinAlgorithm::kST);
  EXPECT_LE(pq.EstimatedIoSeconds(m), st.EstimatedIoSeconds(m) * 1.001);
  const double st_gain = st.EstimatedIoSeconds(m) / st.ObservedIoSeconds();
  const double pq_gain = pq.EstimatedIoSeconds(m) / pq.ObservedIoSeconds();
  EXPECT_GT(st_gain, pq_gain);
}

TEST_F(EndToEnd, Figure3Shape_StreamingIoIsCheapestPerPage) {
  // SSSJ moves the most pages but pays the least per page (sequential).
  const JoinStats sssj = Run(JoinAlgorithm::kSSSJ);
  const JoinStats pq = Run(JoinAlgorithm::kPQ);
  EXPECT_GT(sssj.disk.pages_read, pq.disk.pages_read);
  const double sssj_per_page =
      sssj.disk.io_seconds / static_cast<double>(sssj.disk.pages_read +
                                                 sssj.disk.pages_written);
  const double pq_per_page =
      pq.disk.io_seconds / static_cast<double>(pq.disk.pages_read + 1);
  EXPECT_LT(sssj_per_page, pq_per_page);
}

TEST_F(EndToEnd, Table3Shape_PqMemoryTiny) {
  const JoinStats pq = Run(JoinAlgorithm::kPQ);
  const size_t data_bytes = (roads_.size() + hydro_.size()) * sizeof(RectF);
  EXPECT_GT(pq.max_queue_bytes, 0u);
  // Sublinear in the data (paper: <1% at full scale; the ratio shrinks
  // with scale, so keep a loose bound at this miniature size).
  EXPECT_LT(pq.max_queue_bytes + pq.max_sweep_bytes, data_bytes / 4);
}

TEST_F(EndToEnd, PackingNearNinetyPercent) {
  EXPECT_GT(roads_tree_->AveragePacking(), 0.80);
  EXPECT_LE(roads_tree_->AveragePacking(), 1.0);
}

}  // namespace
}  // namespace sj
