#include "io/stream.h"

#include <gtest/gtest.h>

#include "geometry/rect.h"
#include "io/pager.h"

namespace sj {
namespace {

struct StreamCase {
  uint64_t count;
  uint32_t block_pages;
};

class StreamRoundTrip : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamRoundTrip, RectRecords) {
  const auto [count, block_pages] = GetParam();
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "s");

  StreamWriter<RectF> writer(&pager, block_pages);
  const PageId first = writer.first_page();
  for (uint64_t i = 0; i < count; ++i) {
    writer.Append(RectF(static_cast<float>(i), static_cast<float>(i + 1),
                        static_cast<float>(i + 2), static_cast<float>(i + 3),
                        static_cast<ObjectId>(i)));
  }
  auto n = writer.Finish();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), count);

  StreamReader<RectF> reader(&pager, first, count, block_pages);
  for (uint64_t i = 0; i < count; ++i) {
    auto r = reader.Next();
    ASSERT_TRUE(r.has_value()) << "at record " << i;
    EXPECT_EQ(r->id, i);
    EXPECT_EQ(r->xlo, static_cast<float>(i));
  }
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.Done());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, StreamRoundTrip,
    ::testing::Values(StreamCase{0, 4}, StreamCase{1, 4}, StreamCase{408, 4},
                      StreamCase{409, 4},  // Exactly one page.
                      StreamCase{410, 4},  // One page + 1 record.
                      StreamCase{409 * 4, 4},      // Exactly one block.
                      StreamCase{409 * 4 + 1, 4},  // Block + 1.
                      StreamCase{10000, 1}, StreamCase{10000, 64}));

TEST(Stream, RecordsPerPageMatchesPaperLayout) {
  // 8192 / 20 = 409 rectangles per page.
  EXPECT_EQ(StreamWriter<RectF>::kRecordsPerPage, 409u);
  EXPECT_EQ(StreamWriter<IdPair>::kRecordsPerPage, 1024u);
}

TEST(Stream, WriterChargesOneRequestPerBlock) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "s");
  StreamWriter<RectF> writer(&pager, /*block_pages=*/2);
  const uint32_t per_block = 409 * 2;
  for (uint32_t i = 0; i < per_block * 3; ++i) writer.Append(RectF());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(disk.stats().write_requests, 3u);
  // Blocks are adjacent: first write random, the rest sequential.
  EXPECT_EQ(disk.stats().sequential_write_requests, 2u);
}

TEST(Stream, SequentialScanReadsAreSequentialRequests) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "s");
  StreamWriter<RectF> writer(&pager, 2);
  for (uint32_t i = 0; i < 409 * 6; ++i) writer.Append(RectF());
  auto n = writer.Finish();
  ASSERT_TRUE(n.ok());
  disk.ResetStats();
  StreamReader<RectF> reader(&pager, 0, n.value(), 2);
  while (reader.Next().has_value()) {
  }
  EXPECT_EQ(disk.stats().read_requests, 3u);
  EXPECT_EQ(disk.stats().random_read_requests, 1u);  // Only the first.
}

TEST(Stream, TwoStreamsOnOnePagerDoNotOverlap) {
  DiskModel disk(MachineModel::Machine3());
  Pager pager(std::make_unique<MemoryBackend>(), &disk, "s");
  StreamWriter<IdPair> w1(&pager, 1);
  for (uint32_t i = 0; i < 2000; ++i) w1.Append({i, i});
  const PageId f1 = w1.first_page();
  ASSERT_TRUE(w1.Finish().ok());
  StreamWriter<IdPair> w2(&pager, 1);
  const PageId f2 = w2.first_page();
  for (uint32_t i = 0; i < 2000; ++i) w2.Append({i + 10000, i});
  ASSERT_TRUE(w2.Finish().ok());
  EXPECT_GE(f2, f1 + 2);  // w1 spans 2 pages.

  StreamReader<IdPair> r1(&pager, f1, 2000, 1);
  StreamReader<IdPair> r2(&pager, f2, 2000, 1);
  for (uint32_t i = 0; i < 2000; ++i) {
    EXPECT_EQ(r1.Next()->a, i);
    EXPECT_EQ(r2.Next()->a, i + 10000);
  }
}

TEST(StreamDeathTest, WriterMustBeFinished) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DiskModel disk(MachineModel::Machine3());
        Pager pager(std::make_unique<MemoryBackend>(), &disk, "s");
        { StreamWriter<RectF> writer(&pager); }  // No Finish().
      },
      "Finish");
}

}  // namespace
}  // namespace sj
