// The central property of the study: every algorithm (SSSJ, PBSM, ST, PQ)
// computes exactly the same relation — the set of intersecting MBR pairs,
// and, through the refinement step, the same exact-geometry result set.
// This file sweeps data distributions, sizes, fanouts and sweep structures
// and cross-checks all four against brute force, then re-checks the whole
// matrix on randomized workloads (the seeded differential harness at the
// bottom).

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "datagen/tiger_gen.h"
#include "join/bfs_join.h"
#include "join/sssj.h"
#include "refine/feature_store.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForceExactPairs;
using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

enum class Distribution { kUniform, kClustered, kTiger, kPoints, kMixed };

struct EquivalenceCase {
  Distribution dist;
  uint64_t na, nb;
  uint32_t fanout;
  SweepStructureKind sweep;
  uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const EquivalenceCase& c) {
  const char* names[] = {"uniform", "clustered", "tiger", "points", "mixed"};
  return os << names[static_cast<int>(c.dist)] << "_n" << c.na << "x" << c.nb
            << "_f" << c.fanout << "_" << ToString(c.sweep) << "_s" << c.seed;
}

std::vector<RectF> MakeData(Distribution dist, uint64_t n, uint64_t seed,
                            bool side_b) {
  const RectF region(0, 0, 500, 500);
  switch (dist) {
    case Distribution::kUniform:
      return UniformRects(n, region, side_b ? 3.0f : 1.5f, seed);
    case Distribution::kClustered:
      return ClusteredRects(n, region, 6, 12.0f, 2.0f, seed);
    case Distribution::kTiger: {
      TigerGenerator gen(seed);
      std::vector<RectF> out;
      if (side_b) {
        gen.GenerateHydro(n, &out);
      } else {
        gen.GenerateRoads(n, &out);
      }
      return out;
    }
    case Distribution::kPoints:
      return DiagonalPoints(n, region);
    case Distribution::kMixed: {
      auto out = UniformRects(n / 2, region, 2.0f, seed);
      auto rest = DiagonalPoints(n - n / 2, region,
                                 static_cast<ObjectId>(n / 2));
      out.insert(out.end(), rest.begin(), rest.end());
      return out;
    }
  }
  return {};
}

class JoinEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(JoinEquivalence, AllFourAlgorithmsMatchBruteForce) {
  const EquivalenceCase c = GetParam();
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = MakeData(c.dist, c.na, c.seed, false);
  const auto b = MakeData(c.dist, c.nb, c.seed + 1000, true);
  const auto expected = BruteForcePairs(a, b);

  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);

  auto tree_a_pager = td.NewPager("tree.a");
  auto tree_b_pager = td.NewPager("tree.b");
  auto scratch = td.NewPager("scratch");
  RTreeParams params;
  params.max_entries = c.fanout;
  auto ta = RTree::BulkLoadHilbert(tree_a_pager.get(), da.range,
                                   scratch.get(), params, 1 << 22);
  auto tb = RTree::BulkLoadHilbert(tree_b_pager.get(), db.range,
                                   scratch.get(), params, 1 << 22);
  ASSERT_TRUE(ta.ok() && tb.ok());
  ASSERT_TRUE(ta->Validate().ok());
  ASSERT_TRUE(tb->Validate().ok());

  JoinOptions options;
  options.stream_sweep = c.sweep;
  options.partition_sweep = c.sweep;
  SpatialJoiner joiner(&td.disk, options);
  const JoinInput ia = JoinInput::FromRTree(&*ta);
  const JoinInput ib = JoinInput::FromRTree(&*tb);

  for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                             JoinAlgorithm::kST, JoinAlgorithm::kPQ}) {
    CollectingSink sink;
    auto stats =
        JoinQuery(joiner).Input(ia).Input(ib).Algorithm(algo).Run(&sink);
    ASSERT_TRUE(stats.ok()) << ToString(algo) << ": "
                            << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << ToString(algo);
  }
  // The two extension algorithms must agree as well.
  {
    CollectingSink sink;
    auto stats = BFSJoin(*ta, *tb, &td.disk, options, &sink);
    ASSERT_TRUE(stats.ok()) << "BFS: " << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << "BFS";
  }
  {
    CollectingSink sink;
    auto stats = SSSJStripJoin(da, db, /*strips=*/7, &td.disk, options, &sink);
    ASSERT_TRUE(stats.ok()) << "SSSJ-strip: " << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << "SSSJ-strip";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, JoinEquivalence,
    ::testing::Values(
        EquivalenceCase{Distribution::kUniform, 1500, 1200, 16,
                        SweepStructureKind::kStriped, 1},
        EquivalenceCase{Distribution::kUniform, 1500, 1200, 16,
                        SweepStructureKind::kForward, 2},
        EquivalenceCase{Distribution::kClustered, 2000, 1800, 32,
                        SweepStructureKind::kStriped, 3},
        EquivalenceCase{Distribution::kClustered, 2000, 1800, 8,
                        SweepStructureKind::kForward, 4},
        EquivalenceCase{Distribution::kTiger, 3000, 800, 32,
                        SweepStructureKind::kStriped, 5},
        EquivalenceCase{Distribution::kPoints, 1000, 1000, 16,
                        SweepStructureKind::kStriped, 6},
        EquivalenceCase{Distribution::kMixed, 1600, 1600, 16,
                        SweepStructureKind::kStriped, 7},
        EquivalenceCase{Distribution::kUniform, 50, 3000, 400,
                        SweepStructureKind::kStriped, 8},   // Lopsided.
        EquivalenceCase{Distribution::kUniform, 1, 1, 16,
                        SweepStructureKind::kStriped, 9},   // Minimal.
        EquivalenceCase{Distribution::kTiger, 1000, 1000, 4,
                        SweepStructureKind::kForward, 10}));  // Deep trees.

// ---------------------------------------------------------------------------
// The randomized differential harness: N seeded workloads (distribution
// — uniform / clustered / Zipf-hotspot / diagonal-band / uniform+city /
// TIGER-skewed — cardinalities, density, fanout and memory budget all
// drawn from the seed) × all five algorithm choices (SSSJ, PBSM, ST, PQ,
// kAuto) × 1/2/8 threads × adaptive/fixed partitioning (for the
// algorithms it reaches) × filter-only and filter+refine — every
// configuration must produce the identical sorted result set. A failure
// prints the workload seed; replaying is deterministic:
//
//   SJ_DIFF_SEED=<seed> ./join_equivalence_test \
//       --gtest_filter='RandomizedDifferential.*'
//
// The nightly CI job scales the harness up with fresh seeds:
// SJ_DIFF_WORKLOADS=<n> multiplies the workload count, and SJ_DIFF_SEED
// then selects the *base* of the seed range instead of a single replay.
// ---------------------------------------------------------------------------

struct GeneratedWorkload {
  std::vector<RectF> a, b;
  uint32_t fanout = 16;
  size_t memory_bytes = 24u << 20;
  std::string description;
};

GeneratedWorkload GenerateWorkload(uint64_t seed) {
  Random rng(seed);
  GeneratedWorkload w;
  const uint64_t na = 400 + rng.Uniform(1100);
  const uint64_t nb = 400 + rng.Uniform(1100);
  const RectF region(0, 0, 400, 400);
  std::ostringstream desc;
  switch (rng.Uniform(6)) {
    case 0: {  // Uniform, density varied via rectangle size.
      const float sa = static_cast<float>(rng.UniformDouble(0.5, 4.0));
      const float sb = static_cast<float>(rng.UniformDouble(0.5, 4.0));
      w.a = UniformRects(na, region, sa, rng.Next());
      w.b = UniformRects(nb, region, sb, rng.Next());
      desc << "uniform sizes " << sa << "/" << sb;
      break;
    }
    case 1: {  // Clustered (hard case for PBSM tiles).
      const uint32_t clusters = 3 + static_cast<uint32_t>(rng.Uniform(8));
      const float sigma = static_cast<float>(rng.UniformDouble(5.0, 25.0));
      w.a = ClusteredRects(na, region, clusters, sigma, 2.0f, rng.Next());
      w.b = ClusteredRects(nb, region, clusters, sigma, 2.5f, rng.Next());
      desc << "clustered k=" << clusters << " sigma=" << sigma;
      break;
    }
    case 2: {  // Zipf hotspots (heavy skew: the adaptive planner's case).
      const uint32_t hotspots = 2 + static_cast<uint32_t>(rng.Uniform(10));
      const double theta = rng.UniformDouble(0.5, 1.8);
      const float sigma = static_cast<float>(rng.UniformDouble(1.0, 12.0));
      // Both sides share the hotspot geography (one center seed) but
      // sample records independently, so even needle-thin hotspots
      // produce a non-empty join.
      const uint64_t centers = rng.Next() | 1;
      w.a = ZipfClusteredRects(na, region, hotspots, theta, sigma, 2.0f,
                               rng.Next(), 0, centers);
      w.b = ZipfClusteredRects(nb, region, hotspots, theta, sigma, 2.0f,
                               rng.Next(), 0, centers);
      desc << "zipf k=" << hotspots << " theta=" << theta
           << " sigma=" << sigma;
      break;
    }
    case 3: {  // Diagonal correlation band.
      const float spread = static_cast<float>(rng.UniformDouble(2.0, 30.0));
      w.a = DiagonalBandRects(na, region, spread, 2.0f, rng.Next());
      w.b = DiagonalBandRects(nb, region, spread, 2.5f, rng.Next());
      desc << "diagonal-band spread=" << spread;
      break;
    }
    case 4: {  // Uniform background + one dense city.
      const double fraction = rng.UniformDouble(0.3, 0.8);
      const float side = static_cast<float>(rng.UniformDouble(4.0, 40.0));
      w.a = UniformWithCityRects(na, region, fraction, side, 2.0f,
                                 rng.Next());
      w.b = UniformWithCityRects(nb, region, fraction, side, 2.0f,
                                 rng.Next());
      desc << "uniform+city fraction=" << fraction << " side=" << side;
      break;
    }
    default: {  // Skewed TIGER-style (Zipf county masses).
      TigerGenerator gen(rng.Next());
      gen.GenerateRoads(na, &w.a);
      gen.GenerateHydro(nb, &w.b);
      desc << "tiger-skewed";
      break;
    }
  }
  const size_t budgets[] = {256u << 10, 1u << 20, 24u << 20};
  w.memory_bytes = budgets[rng.Uniform(3)];
  w.fanout = 8u + 8u * static_cast<uint32_t>(rng.Uniform(4));
  desc << " n=" << na << "x" << nb << " fanout=" << w.fanout
       << " mem=" << (w.memory_bytes >> 10) << "KB";
  w.description = desc.str();
  return w;
}

/// SJ_DIFF_MEMORY=tiny clamps every generated workload's budget to the
/// tiny end of the ladder (alternating 256 KB / 1 MB by seed), so the
/// low-memory CI job sweeps the whole differential matrix under memory
/// pressure without a separate test binary.
void ApplyMemoryEnv(GeneratedWorkload* w, uint64_t seed) {
  const char* mode = std::getenv("SJ_DIFF_MEMORY");
  if (mode == nullptr) return;
  if (std::string(mode) == "tiny") {
    w->memory_bytes = (seed & 1) ? (256u << 10) : (1u << 20);
    w->description += " mem-env=tiny(" +
                      std::to_string(w->memory_bytes >> 10) + "KB)";
  }
}

/// Harness configuration from the environment: SJ_DIFF_SEED replays one
/// workload from a specific seed; SJ_DIFF_WORKLOADS multiplies the
/// workload count (the nightly CI job runs many fresh-seeded iterations;
/// together with SJ_DIFF_SEED it replays a *range* starting there);
/// SJ_DIFF_MEMORY=tiny forces tiny budgets (see ApplyMemoryEnv).
struct DiffConfig {
  uint64_t base_seed;
  int workloads;
};

DiffConfig DiffConfigFromEnv(uint64_t default_seed, int default_workloads) {
  DiffConfig config{default_seed, default_workloads};
  if (const char* n = std::getenv("SJ_DIFF_WORKLOADS")) {
    config.workloads = std::max(1, std::atoi(n));
  }
  if (const char* replay = std::getenv("SJ_DIFF_SEED")) {
    config.base_seed = std::strtoull(replay, nullptr, 0);
    if (std::getenv("SJ_DIFF_WORKLOADS") == nullptr) config.workloads = 1;
  }
  return config;
}

TEST(RandomizedDifferential, AllAlgorithmsThreadsAndRefinementAgree) {
  const DiffConfig config = DiffConfigFromEnv(0x5EED2026u, 8);
  for (int trial = 0; trial < config.workloads; ++trial) {
    const uint64_t seed = config.base_seed + static_cast<uint64_t>(trial);
    GeneratedWorkload w = GenerateWorkload(seed);
    ApplyMemoryEnv(&w, seed);
    SCOPED_TRACE("workload [" + w.description +
                 "] — replay with SJ_DIFF_SEED=" + std::to_string(seed));

    // Exact geometry + reference answers by brute force.
    const auto ga = SegmentsForRects(w.a);
    const auto gb = SegmentsForRects(w.b);
    const auto expected_filter = BruteForcePairs(w.a, w.b);
    const auto expected_exact = BruteForceExactPairs(w.a, w.b, ga, gb);
    ASSERT_FALSE(expected_filter.empty());

    TestDisk td;
    std::vector<std::unique_ptr<Pager>> keep;
    const DatasetRef da = MakeDataset(&td, w.a, "a", &keep);
    const DatasetRef db = MakeDataset(&td, w.b, "b", &keep);
    auto geom_a_pager = td.NewPager("geom.a");
    auto geom_b_pager = td.NewPager("geom.b");
    auto store_a = FeatureStore::Build(geom_a_pager.get(), ga, "a");
    auto store_b = FeatureStore::Build(geom_b_pager.get(), gb, "b");
    ASSERT_TRUE(store_a.ok() && store_b.ok());

    auto tree_a_pager = td.NewPager("tree.a");
    auto tree_b_pager = td.NewPager("tree.b");
    auto scratch = td.NewPager("scratch");
    RTreeParams params;
    params.max_entries = w.fanout;
    auto ta = RTree::BulkLoadHilbert(tree_a_pager.get(), da.range,
                                     scratch.get(), params, 1 << 22);
    auto tb = RTree::BulkLoadHilbert(tree_b_pager.get(), db.range,
                                     scratch.get(), params, 1 << 22);
    ASSERT_TRUE(ta.ok() && tb.ok());

    for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                               JoinAlgorithm::kST, JoinAlgorithm::kPQ,
                               JoinAlgorithm::kAuto}) {
      // Index-only algorithms (and the planner) get trees; the stream
      // algorithms exercise the sort-from-stream path.
      const bool indexed =
          algo == JoinAlgorithm::kST || algo == JoinAlgorithm::kPQ ||
          algo == JoinAlgorithm::kAuto;
      JoinInput ia = indexed ? JoinInput::FromRTree(&*ta)
                             : JoinInput::FromStream(da);
      JoinInput ib = indexed ? JoinInput::FromRTree(&*tb)
                             : JoinInput::FromStream(db);
      ia.WithFeatures(&*store_a);
      ib.WithFeatures(&*store_b);
      // The partitioning dimension only changes PBSM's execution (kAuto
      // may plan PBSM in the future), so only those algorithms double
      // their configurations with the fixed-grid escape hatch.
      const bool partitioning_applies =
          algo == JoinAlgorithm::kPBSM || algo == JoinAlgorithm::kAuto;
      for (uint32_t threads : {1u, 2u, 8u}) {
        // One shared joiner per workload config; every variation below is
        // a per-query override, never a joiner mutation. The buffer pool
        // is no longer downsized by hand: it is grant-backed, so the
        // arbiter shrinks it to the budget on its own.
        JoinOptions options;
        options.memory_bytes = w.memory_bytes;
        SpatialJoiner joiner(&td.disk, options);
        for (bool adaptive : {true, false}) {
          if (!adaptive && !partitioning_applies) continue;
          const std::string variant =
              std::string(ToString(algo)) + " t" + std::to_string(threads) +
              (adaptive ? " adaptive" : " fixed-grid");
          {
            CollectingSink sink;
            auto stats = JoinQuery(joiner)
                             .Input(ia)
                             .Input(ib)
                             .Algorithm(algo)
                             .Threads(threads)
                             .AdaptivePartitioning(adaptive)
                             .RefineBatchPairs(512)
                             .Run(&sink);
            ASSERT_TRUE(stats.ok()) << variant << ": "
                                    << stats.status().ToString();
            EXPECT_EQ(Sorted(sink.pairs()), expected_filter)
                << variant << " filter";
          }
          {
            CollectingSink sink;
            auto stats = JoinQuery(joiner)
                             .Input(ia)
                             .Input(ib)
                             .Algorithm(algo)
                             .Threads(threads)
                             .AdaptivePartitioning(adaptive)
                             .RefineBatchPairs(512)
                             .Refine(true)
                             .Run(&sink);
            ASSERT_TRUE(stats.ok()) << variant << ": "
                                    << stats.status().ToString();
            EXPECT_EQ(Sorted(sink.pairs()), expected_exact)
                << variant << " refined";
            EXPECT_EQ(stats->candidate_count, expected_filter.size())
                << variant << " refined";
            EXPECT_FALSE(joiner.options().refine)
                << "per-query override must not mutate the shared joiner";
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The memory-budget dimension (the MemoryArbiter acceptance property):
// every algorithm at every budget of the ladder — 256 KB, 1 MB, the
// 24 MB default — produces output identical to the default-budget run,
// across 1 and 8 threads; and the reported peak_memory_bytes stays
// within the granted budget for every algorithm on every workload.
// Tiny budgets exercise the degradation paths (SSSJ strip spill, PBSM
// writer-block shrink + overflow grants, the shrunken ST pool, smaller
// refine batches) which must all be invisible in the result set.
// ---------------------------------------------------------------------------

TEST(RandomizedDifferential, MemoryBudgetDimensionAgreesAndStaysInBudget) {
  const DiffConfig config = DiffConfigFromEnv(0x3E3B0D6Eu, 3);
  for (int trial = 0; trial < config.workloads; ++trial) {
    const uint64_t seed = config.base_seed + static_cast<uint64_t>(trial);
    const GeneratedWorkload w = GenerateWorkload(seed);
    SCOPED_TRACE("workload [" + w.description +
                 "] — replay with SJ_DIFF_SEED=" + std::to_string(seed));

    TestDisk td;
    std::vector<std::unique_ptr<Pager>> keep;
    const DatasetRef da = MakeDataset(&td, w.a, "a", &keep);
    const DatasetRef db = MakeDataset(&td, w.b, "b", &keep);
    auto tree_a_pager = td.NewPager("tree.a");
    auto tree_b_pager = td.NewPager("tree.b");
    auto scratch = td.NewPager("scratch");
    RTreeParams params;
    params.max_entries = w.fanout;
    auto ta = RTree::BulkLoadHilbert(tree_a_pager.get(), da.range,
                                     scratch.get(), params, 1 << 22);
    auto tb = RTree::BulkLoadHilbert(tree_b_pager.get(), db.range,
                                     scratch.get(), params, 1 << 22);
    ASSERT_TRUE(ta.ok() && tb.ok());

    SpatialJoiner joiner(&td.disk, JoinOptions());
    const size_t kDefault = JoinOptions().memory_bytes;
    for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                               JoinAlgorithm::kST, JoinAlgorithm::kPQ,
                               JoinAlgorithm::kAuto}) {
      const bool indexed =
          algo == JoinAlgorithm::kST || algo == JoinAlgorithm::kPQ ||
          algo == JoinAlgorithm::kAuto;
      const JoinInput ia = indexed ? JoinInput::FromRTree(&*ta)
                                   : JoinInput::FromStream(da);
      const JoinInput ib = indexed ? JoinInput::FromRTree(&*tb)
                                   : JoinInput::FromStream(db);

      // Reference: the default-budget run of this algorithm.
      std::vector<IdPair> reference;
      {
        CollectingSink sink;
        auto stats =
            JoinQuery(joiner).Input(ia).Input(ib).Algorithm(algo).Run(&sink);
        ASSERT_TRUE(stats.ok()) << ToString(algo) << ": "
                                << stats.status().ToString();
        reference = Sorted(sink.pairs());
      }

      for (const size_t budget : {size_t{256} << 10, size_t{1} << 20,
                                  kDefault}) {
        for (uint32_t threads : {1u, 8u}) {
          CollectingSink sink;
          auto stats = JoinQuery(joiner)
                           .Input(ia)
                           .Input(ib)
                           .Algorithm(algo)
                           .MemoryBytes(budget)
                           .Threads(threads)
                           .Run(&sink);
          const std::string variant = std::string(ToString(algo)) + " mem" +
                                      std::to_string(budget >> 10) + "KB t" +
                                      std::to_string(threads);
          ASSERT_TRUE(stats.ok()) << variant << ": "
                                  << stats.status().ToString();
          EXPECT_EQ(Sorted(sink.pairs()), reference) << variant;
          // Enforcement: the arbiter's granted peak is real and bounded.
          EXPECT_GT(stats->peak_memory_bytes, 0u) << variant;
          EXPECT_LE(stats->peak_memory_bytes, budget) << variant;
          EXPECT_FALSE(stats->memory_components.empty()) << variant;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-query option overrides: a JoinQuery with Threads/Refine overrides
// must leave the shared joiner's options untouched and produce output
// identical to a joiner *constructed* with those options.
// ---------------------------------------------------------------------------

TEST(JoinQueryOverrides, MatchDedicatedJoinerAndLeaveSharedOptionsAlone) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 300, 300);
  const auto a = UniformRects(900, region, 2.0f, 21);
  const auto b = UniformRects(800, region, 2.5f, 22);
  const auto ga = SegmentsForRects(a);
  const auto gb = SegmentsForRects(b);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  auto pager_a = td.NewPager("geom.a");
  auto pager_b = td.NewPager("geom.b");
  auto store_a = FeatureStore::Build(pager_a.get(), ga, "a");
  auto store_b = FeatureStore::Build(pager_b.get(), gb, "b");
  ASSERT_TRUE(store_a.ok() && store_b.ok());

  // The shared joiner: serial, filter-only defaults.
  const JoinOptions defaults;
  SpatialJoiner shared(&td.disk, defaults);

  CollectingSink overridden;
  auto query_stats = JoinQuery(shared)
                         .Input(JoinInput::FromStream(da))
                         .Input(JoinInput::FromStream(db))
                         .WithFeatures(0, &*store_a)
                         .WithFeatures(1, &*store_b)
                         .Algorithm(JoinAlgorithm::kSSSJ)
                         .Threads(8)
                         .Refine(true)
                         .RefineBatchPairs(128)
                         .Run(&overridden);
  ASSERT_TRUE(query_stats.ok()) << query_stats.status().ToString();

  // The shared joiner's options are untouched by the query's overrides.
  EXPECT_EQ(shared.options().num_threads, defaults.num_threads);
  EXPECT_EQ(shared.options().refine, defaults.refine);
  EXPECT_EQ(shared.options().refine_batch_pairs, defaults.refine_batch_pairs);

  // A joiner constructed with the overridden options produces identical
  // output and the identical candidate/exact split.
  JoinOptions constructed = defaults;
  constructed.num_threads = 8;
  constructed.refine = true;
  constructed.refine_batch_pairs = 128;
  SpatialJoiner dedicated(&td.disk, constructed);
  CollectingSink baseline;
  JoinInput ia = JoinInput::FromStream(da);
  JoinInput ib = JoinInput::FromStream(db);
  ia.WithFeatures(&*store_a);
  ib.WithFeatures(&*store_b);
  auto dedicated_stats = JoinQuery(dedicated)
                             .Input(ia)
                             .Input(ib)
                             .Algorithm(JoinAlgorithm::kSSSJ)
                             .Run(&baseline);
  ASSERT_TRUE(dedicated_stats.ok());
  EXPECT_EQ(overridden.pairs(), baseline.pairs());
  EXPECT_EQ(query_stats->output_count, dedicated_stats->output_count);
  EXPECT_EQ(query_stats->candidate_count, dedicated_stats->candidate_count);
}

// ---------------------------------------------------------------------------
// The differential harness for the non-intersection predicates: brute
// force ε-distance and containment oracles cross-checked against
// JoinQuery over SSSJ/PBSM/ST/PQ at 1/2/8 threads.
// ---------------------------------------------------------------------------

TEST(RandomizedDifferential, DistancePredicateAgreesWithBruteForce) {
  const DiffConfig config = DiffConfigFromEnv(0xD157A6CEu, 3);
  const uint64_t base_seed = config.base_seed;
  const int workloads = config.workloads;
  // A sparse seed can legitimately produce an empty join (clusters far
  // apart); the pipeline must then return empty too, but across the suite
  // at least one workload has to exercise real matches.
  uint64_t total_filter_pairs = 0;
  for (int trial = 0; trial < workloads; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
    const GeneratedWorkload w = GenerateWorkload(seed);
    Random eps_rng(seed ^ 0xE95u);
    const double eps = eps_rng.UniformDouble(0.5, 6.0);
    SCOPED_TRACE("workload [" + w.description + "] eps=" +
                 std::to_string(eps) +
                 " — replay with SJ_DIFF_SEED=" + std::to_string(seed));

    const auto ga = SegmentsForRects(w.a);
    const auto gb = SegmentsForRects(w.b);
    // The filter-step oracle replicates the compile step's transform
    // exactly: side 1 is ε-expanded (same float arithmetic), then plain
    // MBR intersection. The refined oracle additionally applies the
    // exact Euclidean segment distance.
    std::vector<IdPair> expected_filter, expected_exact;
    for (size_t i = 0; i < w.a.size(); ++i) {
      for (size_t j = 0; j < w.b.size(); ++j) {
        if (!w.a[i].Intersects(ExpandRectForDistance(w.b[j], eps))) continue;
        expected_filter.push_back({w.a[i].id, w.b[j].id});
        if (SegmentsWithinDistance(ga[i], gb[j], eps)) {
          expected_exact.push_back({w.a[i].id, w.b[j].id});
        }
      }
    }
    std::sort(expected_filter.begin(), expected_filter.end());
    std::sort(expected_exact.begin(), expected_exact.end());
    total_filter_pairs += expected_filter.size();

    TestDisk td;
    std::vector<std::unique_ptr<Pager>> keep;
    const DatasetRef da = MakeDataset(&td, w.a, "a", &keep);
    const DatasetRef db = MakeDataset(&td, w.b, "b", &keep);
    auto geom_a_pager = td.NewPager("geom.a");
    auto geom_b_pager = td.NewPager("geom.b");
    auto store_a = FeatureStore::Build(geom_a_pager.get(), ga, "a");
    auto store_b = FeatureStore::Build(geom_b_pager.get(), gb, "b");
    ASSERT_TRUE(store_a.ok() && store_b.ok());

    auto tree_a_pager = td.NewPager("tree.a");
    auto tree_b_pager = td.NewPager("tree.b");
    auto scratch = td.NewPager("scratch");
    RTreeParams params;
    params.max_entries = w.fanout;
    auto ta = RTree::BulkLoadHilbert(tree_a_pager.get(), da.range,
                                     scratch.get(), params, 1 << 22);
    auto tb = RTree::BulkLoadHilbert(tree_b_pager.get(), db.range,
                                     scratch.get(), params, 1 << 22);
    ASSERT_TRUE(ta.ok() && tb.ok());

    SpatialJoiner joiner(&td.disk, JoinOptions());
    for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                               JoinAlgorithm::kST, JoinAlgorithm::kPQ}) {
      const bool indexed =
          algo == JoinAlgorithm::kST || algo == JoinAlgorithm::kPQ;
      JoinInput ia = indexed ? JoinInput::FromRTree(&*ta)
                             : JoinInput::FromStream(da);
      JoinInput ib = indexed ? JoinInput::FromRTree(&*tb)
                             : JoinInput::FromStream(db);
      for (uint32_t threads : {1u, 2u, 8u}) {
        {
          CollectingSink sink;
          auto stats = JoinQuery(joiner)
                           .Input(ia)
                           .Input(ib)
                           .Predicate(Predicate::kDistanceWithin, eps)
                           .Algorithm(algo)
                           .Threads(threads)
                           .Run(&sink);
          ASSERT_TRUE(stats.ok()) << ToString(algo) << " t" << threads
                                  << ": " << stats.status().ToString();
          EXPECT_EQ(Sorted(sink.pairs()), expected_filter)
              << ToString(algo) << " distance filter, " << threads
              << " threads";
        }
        {
          CollectingSink sink;
          auto stats = JoinQuery(joiner)
                           .Input(ia)
                           .Input(ib)
                           .WithFeatures(0, &*store_a)
                           .WithFeatures(1, &*store_b)
                           .Predicate(Predicate::kDistanceWithin, eps)
                           .Algorithm(algo)
                           .Threads(threads)
                           .Refine(true)
                           .RefineBatchPairs(512)
                           .Run(&sink);
          ASSERT_TRUE(stats.ok()) << ToString(algo) << " t" << threads
                                  << ": " << stats.status().ToString();
          EXPECT_EQ(Sorted(sink.pairs()), expected_exact)
              << ToString(algo) << " distance refined, " << threads
              << " threads";
          EXPECT_EQ(stats->candidate_count, expected_filter.size())
              << ToString(algo) << " distance refined, " << threads
              << " threads";
        }
      }
    }
  }
  EXPECT_GT(total_filter_pairs, 0u)
      << "every distance workload was empty; the suite exercised nothing";
}

/// Integer-coordinate segments so exact containment really occurs: double
/// arithmetic on small integers is exact, so sub-segments at integer lattice
/// points of their parent are contained with no rounding caveats.
struct ContainmentWorkload {
  std::vector<RectF> a, b;
  std::vector<Segment> ga, gb;
};

ContainmentWorkload GenerateContainmentWorkload(uint64_t seed) {
  Random rng(seed);
  ContainmentWorkload w;
  const uint64_t na = 300 + rng.Uniform(300);
  const uint64_t nb = 300 + rng.Uniform(300);
  for (uint64_t i = 0; i < na; ++i) {
    const int x = static_cast<int>(rng.Uniform(400));
    const int y = static_cast<int>(rng.Uniform(400));
    const int g = 1 + static_cast<int>(rng.Uniform(8));
    const int ex = static_cast<int>(rng.Uniform(11)) - 5;
    const int ey = static_cast<int>(rng.Uniform(11)) - 5;
    const Segment s(static_cast<float>(x), static_cast<float>(y),
                    static_cast<float>(x + g * ex),
                    static_cast<float>(y + g * ey));
    w.ga.push_back(s);
    w.a.push_back(s.Mbr(static_cast<ObjectId>(i)));
  }
  for (uint64_t j = 0; j < nb; ++j) {
    Segment s;
    if (j % 3 == 0) {
      // A sub-segment of a random parent, between two of its integer
      // lattice points: genuinely contained.
      const Segment& parent = w.ga[rng.Uniform(na)];
      const int g = 8;
      const double ex = (parent.x2 - parent.x1) / g;
      const double ey = (parent.y2 - parent.y1) / g;
      int k1 = static_cast<int>(rng.Uniform(g + 1));
      int k2 = static_cast<int>(rng.Uniform(g + 1));
      if (k1 > k2) std::swap(k1, k2);
      s = Segment(static_cast<float>(parent.x1 + k1 * ex),
                  static_cast<float>(parent.y1 + k1 * ey),
                  static_cast<float>(parent.x1 + k2 * ex),
                  static_cast<float>(parent.y1 + k2 * ey));
    } else {
      const int x = static_cast<int>(rng.Uniform(400));
      const int y = static_cast<int>(rng.Uniform(400));
      s = Segment(static_cast<float>(x), static_cast<float>(y),
                  static_cast<float>(x + static_cast<int>(rng.Uniform(21)) -
                                     10),
                  static_cast<float>(y + static_cast<int>(rng.Uniform(21)) -
                                     10));
    }
    w.gb.push_back(s);
    w.b.push_back(s.Mbr(static_cast<ObjectId>(j)));
  }
  return w;
}

TEST(RandomizedDifferential, ContainmentPredicateAgreesWithBruteForce) {
  const DiffConfig config = DiffConfigFromEnv(0xC047A15u, 3);
  const uint64_t base_seed = config.base_seed;
  const int workloads = config.workloads;
  for (int trial = 0; trial < workloads; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
    const ContainmentWorkload w = GenerateContainmentWorkload(seed);
    SCOPED_TRACE("containment workload — replay with SJ_DIFF_SEED=" +
                 std::to_string(seed));

    // Oracle: the refined result is every MBR-overlapping pair whose
    // exact geometry satisfies "a contains b".
    std::vector<IdPair> expected_filter, expected_exact;
    for (size_t i = 0; i < w.a.size(); ++i) {
      for (size_t j = 0; j < w.b.size(); ++j) {
        if (!w.a[i].Intersects(w.b[j])) continue;
        expected_filter.push_back({w.a[i].id, w.b[j].id});
        if (SegmentContainsSegment(w.ga[i], w.gb[j])) {
          expected_exact.push_back({w.a[i].id, w.b[j].id});
        }
      }
    }
    std::sort(expected_exact.begin(), expected_exact.end());
    ASSERT_FALSE(expected_exact.empty())
        << "containment workload generated no contained pairs";
    ASSERT_LT(expected_exact.size(), expected_filter.size())
        << "the MBR filter should overapproximate containment";

    TestDisk td;
    std::vector<std::unique_ptr<Pager>> keep;
    const DatasetRef da = MakeDataset(&td, w.a, "a", &keep);
    const DatasetRef db = MakeDataset(&td, w.b, "b", &keep);
    auto geom_a_pager = td.NewPager("geom.a");
    auto geom_b_pager = td.NewPager("geom.b");
    auto store_a = FeatureStore::Build(geom_a_pager.get(), w.ga, "a");
    auto store_b = FeatureStore::Build(geom_b_pager.get(), w.gb, "b");
    ASSERT_TRUE(store_a.ok() && store_b.ok());
    auto tree_a_pager = td.NewPager("tree.a");
    auto tree_b_pager = td.NewPager("tree.b");
    auto scratch = td.NewPager("scratch");
    auto ta = RTree::BulkLoadHilbert(tree_a_pager.get(), da.range,
                                     scratch.get(), RTreeParams(), 1 << 22);
    auto tb = RTree::BulkLoadHilbert(tree_b_pager.get(), db.range,
                                     scratch.get(), RTreeParams(), 1 << 22);
    ASSERT_TRUE(ta.ok() && tb.ok());

    SpatialJoiner joiner(&td.disk, JoinOptions());
    for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                               JoinAlgorithm::kST, JoinAlgorithm::kPQ}) {
      const bool indexed =
          algo == JoinAlgorithm::kST || algo == JoinAlgorithm::kPQ;
      JoinInput ia = indexed ? JoinInput::FromRTree(&*ta)
                             : JoinInput::FromStream(da);
      JoinInput ib = indexed ? JoinInput::FromRTree(&*tb)
                             : JoinInput::FromStream(db);
      for (uint32_t threads : {1u, 2u, 8u}) {
        CollectingSink sink;
        auto stats = JoinQuery(joiner)
                         .Input(ia)
                         .Input(ib)
                         .WithFeatures(0, &*store_a)
                         .WithFeatures(1, &*store_b)
                         .Predicate(Predicate::kContains)
                         .Algorithm(algo)
                         .Threads(threads)
                         .Refine(true)
                         .RefineBatchPairs(256)
                         .Run(&sink);
        ASSERT_TRUE(stats.ok()) << ToString(algo) << " t" << threads << ": "
                                << stats.status().ToString();
        EXPECT_EQ(Sorted(sink.pairs()), expected_exact)
            << ToString(algo) << " containment, " << threads << " threads";
        EXPECT_EQ(stats->candidate_count, expected_filter.size())
            << ToString(algo) << " containment, " << threads << " threads";
      }
    }
  }
}

}  // namespace
}  // namespace sj
