// The central property of the study: every algorithm (SSSJ, PBSM, ST, PQ)
// computes exactly the same relation — the set of intersecting MBR pairs,
// and, through the refinement step, the same exact-geometry result set.
// This file sweeps data distributions, sizes, fanouts and sweep structures
// and cross-checks all four against brute force, then re-checks the whole
// matrix on randomized workloads (the seeded differential harness at the
// bottom).

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "datagen/tiger_gen.h"
#include "join/bfs_join.h"
#include "refine/feature_store.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForceExactPairs;
using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

enum class Distribution { kUniform, kClustered, kTiger, kPoints, kMixed };

struct EquivalenceCase {
  Distribution dist;
  uint64_t na, nb;
  uint32_t fanout;
  SweepStructureKind sweep;
  uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const EquivalenceCase& c) {
  const char* names[] = {"uniform", "clustered", "tiger", "points", "mixed"};
  return os << names[static_cast<int>(c.dist)] << "_n" << c.na << "x" << c.nb
            << "_f" << c.fanout << "_" << ToString(c.sweep) << "_s" << c.seed;
}

std::vector<RectF> MakeData(Distribution dist, uint64_t n, uint64_t seed,
                            bool side_b) {
  const RectF region(0, 0, 500, 500);
  switch (dist) {
    case Distribution::kUniform:
      return UniformRects(n, region, side_b ? 3.0f : 1.5f, seed);
    case Distribution::kClustered:
      return ClusteredRects(n, region, 6, 12.0f, 2.0f, seed);
    case Distribution::kTiger: {
      TigerGenerator gen(seed);
      std::vector<RectF> out;
      if (side_b) {
        gen.GenerateHydro(n, &out);
      } else {
        gen.GenerateRoads(n, &out);
      }
      return out;
    }
    case Distribution::kPoints:
      return DiagonalPoints(n, region);
    case Distribution::kMixed: {
      auto out = UniformRects(n / 2, region, 2.0f, seed);
      auto rest = DiagonalPoints(n - n / 2, region,
                                 static_cast<ObjectId>(n / 2));
      out.insert(out.end(), rest.begin(), rest.end());
      return out;
    }
  }
  return {};
}

class JoinEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(JoinEquivalence, AllFourAlgorithmsMatchBruteForce) {
  const EquivalenceCase c = GetParam();
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = MakeData(c.dist, c.na, c.seed, false);
  const auto b = MakeData(c.dist, c.nb, c.seed + 1000, true);
  const auto expected = BruteForcePairs(a, b);

  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);

  auto tree_a_pager = td.NewPager("tree.a");
  auto tree_b_pager = td.NewPager("tree.b");
  auto scratch = td.NewPager("scratch");
  RTreeParams params;
  params.max_entries = c.fanout;
  auto ta = RTree::BulkLoadHilbert(tree_a_pager.get(), da.range,
                                   scratch.get(), params, 1 << 22);
  auto tb = RTree::BulkLoadHilbert(tree_b_pager.get(), db.range,
                                   scratch.get(), params, 1 << 22);
  ASSERT_TRUE(ta.ok() && tb.ok());
  ASSERT_TRUE(ta->Validate().ok());
  ASSERT_TRUE(tb->Validate().ok());

  JoinOptions options;
  options.stream_sweep = c.sweep;
  options.partition_sweep = c.sweep;
  SpatialJoiner joiner(&td.disk, options);
  const JoinInput ia = JoinInput::FromRTree(&*ta);
  const JoinInput ib = JoinInput::FromRTree(&*tb);

  for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                             JoinAlgorithm::kST, JoinAlgorithm::kPQ}) {
    CollectingSink sink;
    auto stats = joiner.Join(ia, ib, &sink, algo);
    ASSERT_TRUE(stats.ok()) << ToString(algo) << ": "
                            << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << ToString(algo);
  }
  // The two extension algorithms must agree as well.
  {
    CollectingSink sink;
    auto stats = BFSJoin(*ta, *tb, &td.disk, options, &sink);
    ASSERT_TRUE(stats.ok()) << "BFS: " << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << "BFS";
  }
  {
    CollectingSink sink;
    auto stats = SSSJStripJoin(da, db, /*strips=*/7, &td.disk, options, &sink);
    ASSERT_TRUE(stats.ok()) << "SSSJ-strip: " << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << "SSSJ-strip";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, JoinEquivalence,
    ::testing::Values(
        EquivalenceCase{Distribution::kUniform, 1500, 1200, 16,
                        SweepStructureKind::kStriped, 1},
        EquivalenceCase{Distribution::kUniform, 1500, 1200, 16,
                        SweepStructureKind::kForward, 2},
        EquivalenceCase{Distribution::kClustered, 2000, 1800, 32,
                        SweepStructureKind::kStriped, 3},
        EquivalenceCase{Distribution::kClustered, 2000, 1800, 8,
                        SweepStructureKind::kForward, 4},
        EquivalenceCase{Distribution::kTiger, 3000, 800, 32,
                        SweepStructureKind::kStriped, 5},
        EquivalenceCase{Distribution::kPoints, 1000, 1000, 16,
                        SweepStructureKind::kStriped, 6},
        EquivalenceCase{Distribution::kMixed, 1600, 1600, 16,
                        SweepStructureKind::kStriped, 7},
        EquivalenceCase{Distribution::kUniform, 50, 3000, 400,
                        SweepStructureKind::kStriped, 8},   // Lopsided.
        EquivalenceCase{Distribution::kUniform, 1, 1, 16,
                        SweepStructureKind::kStriped, 9},   // Minimal.
        EquivalenceCase{Distribution::kTiger, 1000, 1000, 4,
                        SweepStructureKind::kForward, 10}));  // Deep trees.

// ---------------------------------------------------------------------------
// The randomized differential harness: N seeded workloads (distribution,
// cardinalities, density, fanout and memory budget all drawn from the
// seed) × all five algorithm choices (SSSJ, PBSM, ST, PQ, kAuto) × 1/2/8
// threads × filter-only and filter+refine — every configuration must
// produce the identical sorted result set. A failure prints the workload
// seed; replaying is deterministic:
//
//   SJ_DIFF_SEED=<seed> ./join_equivalence_test \
//       --gtest_filter='RandomizedDifferential.*'
// ---------------------------------------------------------------------------

struct GeneratedWorkload {
  std::vector<RectF> a, b;
  uint32_t fanout = 16;
  size_t memory_bytes = 24u << 20;
  std::string description;
};

GeneratedWorkload GenerateWorkload(uint64_t seed) {
  Random rng(seed);
  GeneratedWorkload w;
  const uint64_t na = 400 + rng.Uniform(1100);
  const uint64_t nb = 400 + rng.Uniform(1100);
  const RectF region(0, 0, 400, 400);
  std::ostringstream desc;
  switch (rng.Uniform(3)) {
    case 0: {  // Uniform, density varied via rectangle size.
      const float sa = static_cast<float>(rng.UniformDouble(0.5, 4.0));
      const float sb = static_cast<float>(rng.UniformDouble(0.5, 4.0));
      w.a = UniformRects(na, region, sa, rng.Next());
      w.b = UniformRects(nb, region, sb, rng.Next());
      desc << "uniform sizes " << sa << "/" << sb;
      break;
    }
    case 1: {  // Clustered (hard case for PBSM tiles).
      const uint32_t clusters = 3 + static_cast<uint32_t>(rng.Uniform(8));
      const float sigma = static_cast<float>(rng.UniformDouble(5.0, 25.0));
      w.a = ClusteredRects(na, region, clusters, sigma, 2.0f, rng.Next());
      w.b = ClusteredRects(nb, region, clusters, sigma, 2.5f, rng.Next());
      desc << "clustered k=" << clusters << " sigma=" << sigma;
      break;
    }
    default: {  // Skewed TIGER-style (Zipf county masses).
      TigerGenerator gen(rng.Next());
      gen.GenerateRoads(na, &w.a);
      gen.GenerateHydro(nb, &w.b);
      desc << "tiger-skewed";
      break;
    }
  }
  const size_t budgets[] = {256u << 10, 1u << 20, 24u << 20};
  w.memory_bytes = budgets[rng.Uniform(3)];
  w.fanout = 8u + 8u * static_cast<uint32_t>(rng.Uniform(4));
  desc << " n=" << na << "x" << nb << " fanout=" << w.fanout
       << " mem=" << (w.memory_bytes >> 10) << "KB";
  w.description = desc.str();
  return w;
}

TEST(RandomizedDifferential, AllAlgorithmsThreadsAndRefinementAgree) {
  uint64_t base_seed = 0x5EED2026u;
  int workloads = 6;
  if (const char* replay = std::getenv("SJ_DIFF_SEED")) {
    base_seed = std::strtoull(replay, nullptr, 0);
    workloads = 1;
  }
  for (int trial = 0; trial < workloads; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
    const GeneratedWorkload w = GenerateWorkload(seed);
    SCOPED_TRACE("workload [" + w.description +
                 "] — replay with SJ_DIFF_SEED=" + std::to_string(seed));

    // Exact geometry + reference answers by brute force.
    const auto ga = SegmentsForRects(w.a);
    const auto gb = SegmentsForRects(w.b);
    const auto expected_filter = BruteForcePairs(w.a, w.b);
    const auto expected_exact = BruteForceExactPairs(w.a, w.b, ga, gb);
    ASSERT_FALSE(expected_filter.empty());

    TestDisk td;
    std::vector<std::unique_ptr<Pager>> keep;
    const DatasetRef da = MakeDataset(&td, w.a, "a", &keep);
    const DatasetRef db = MakeDataset(&td, w.b, "b", &keep);
    auto geom_a_pager = td.NewPager("geom.a");
    auto geom_b_pager = td.NewPager("geom.b");
    auto store_a = FeatureStore::Build(geom_a_pager.get(), ga, "a");
    auto store_b = FeatureStore::Build(geom_b_pager.get(), gb, "b");
    ASSERT_TRUE(store_a.ok() && store_b.ok());

    auto tree_a_pager = td.NewPager("tree.a");
    auto tree_b_pager = td.NewPager("tree.b");
    auto scratch = td.NewPager("scratch");
    RTreeParams params;
    params.max_entries = w.fanout;
    auto ta = RTree::BulkLoadHilbert(tree_a_pager.get(), da.range,
                                     scratch.get(), params, 1 << 22);
    auto tb = RTree::BulkLoadHilbert(tree_b_pager.get(), db.range,
                                     scratch.get(), params, 1 << 22);
    ASSERT_TRUE(ta.ok() && tb.ok());

    for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                               JoinAlgorithm::kST, JoinAlgorithm::kPQ,
                               JoinAlgorithm::kAuto}) {
      // Index-only algorithms (and the planner) get trees; the stream
      // algorithms exercise the sort-from-stream path.
      const bool indexed =
          algo == JoinAlgorithm::kST || algo == JoinAlgorithm::kPQ ||
          algo == JoinAlgorithm::kAuto;
      JoinInput ia = indexed ? JoinInput::FromRTree(&*ta)
                             : JoinInput::FromStream(da);
      JoinInput ib = indexed ? JoinInput::FromRTree(&*tb)
                             : JoinInput::FromStream(db);
      ia.WithFeatures(&*store_a);
      ib.WithFeatures(&*store_b);
      for (uint32_t threads : {1u, 2u, 8u}) {
        JoinOptions options;
        options.memory_bytes = w.memory_bytes;
        options.buffer_pool_pages = std::max<size_t>(
            16, w.memory_bytes / kPageSize);
        options.num_threads = threads;
        options.refine_batch_pairs = 512;
        {
          SpatialJoiner joiner(&td.disk, options);
          CollectingSink sink;
          auto stats = joiner.Join(ia, ib, &sink, algo);
          ASSERT_TRUE(stats.ok()) << ToString(algo) << " t" << threads
                                  << ": " << stats.status().ToString();
          EXPECT_EQ(Sorted(sink.pairs()), expected_filter)
              << ToString(algo) << " filter, " << threads << " threads";
        }
        {
          options.refine = true;
          SpatialJoiner joiner(&td.disk, options);
          CollectingSink sink;
          auto stats = joiner.Join(ia, ib, &sink, algo);
          ASSERT_TRUE(stats.ok()) << ToString(algo) << " t" << threads
                                  << ": " << stats.status().ToString();
          EXPECT_EQ(Sorted(sink.pairs()), expected_exact)
              << ToString(algo) << " refined, " << threads << " threads";
          EXPECT_EQ(stats->candidate_count, expected_filter.size())
              << ToString(algo) << " refined, " << threads << " threads";
        }
      }
    }
  }
}

}  // namespace
}  // namespace sj
