// The central property of the study: every algorithm (SSSJ, PBSM, ST, PQ)
// computes exactly the same relation — the set of intersecting MBR pairs.
// This file sweeps data distributions, sizes, fanouts and sweep structures
// and cross-checks all four against brute force.

#include <gtest/gtest.h>

#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "datagen/tiger_gen.h"
#include "join/bfs_join.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

enum class Distribution { kUniform, kClustered, kTiger, kPoints, kMixed };

struct EquivalenceCase {
  Distribution dist;
  uint64_t na, nb;
  uint32_t fanout;
  SweepStructureKind sweep;
  uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const EquivalenceCase& c) {
  const char* names[] = {"uniform", "clustered", "tiger", "points", "mixed"};
  return os << names[static_cast<int>(c.dist)] << "_n" << c.na << "x" << c.nb
            << "_f" << c.fanout << "_" << ToString(c.sweep) << "_s" << c.seed;
}

std::vector<RectF> MakeData(Distribution dist, uint64_t n, uint64_t seed,
                            bool side_b) {
  const RectF region(0, 0, 500, 500);
  switch (dist) {
    case Distribution::kUniform:
      return UniformRects(n, region, side_b ? 3.0f : 1.5f, seed);
    case Distribution::kClustered:
      return ClusteredRects(n, region, 6, 12.0f, 2.0f, seed);
    case Distribution::kTiger: {
      TigerGenerator gen(seed);
      std::vector<RectF> out;
      if (side_b) {
        gen.GenerateHydro(n, &out);
      } else {
        gen.GenerateRoads(n, &out);
      }
      return out;
    }
    case Distribution::kPoints:
      return DiagonalPoints(n, region);
    case Distribution::kMixed: {
      auto out = UniformRects(n / 2, region, 2.0f, seed);
      auto rest = DiagonalPoints(n - n / 2, region,
                                 static_cast<ObjectId>(n / 2));
      out.insert(out.end(), rest.begin(), rest.end());
      return out;
    }
  }
  return {};
}

class JoinEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(JoinEquivalence, AllFourAlgorithmsMatchBruteForce) {
  const EquivalenceCase c = GetParam();
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = MakeData(c.dist, c.na, c.seed, false);
  const auto b = MakeData(c.dist, c.nb, c.seed + 1000, true);
  const auto expected = BruteForcePairs(a, b);

  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);

  auto tree_a_pager = td.NewPager("tree.a");
  auto tree_b_pager = td.NewPager("tree.b");
  auto scratch = td.NewPager("scratch");
  RTreeParams params;
  params.max_entries = c.fanout;
  auto ta = RTree::BulkLoadHilbert(tree_a_pager.get(), da.range,
                                   scratch.get(), params, 1 << 22);
  auto tb = RTree::BulkLoadHilbert(tree_b_pager.get(), db.range,
                                   scratch.get(), params, 1 << 22);
  ASSERT_TRUE(ta.ok() && tb.ok());
  ASSERT_TRUE(ta->Validate().ok());
  ASSERT_TRUE(tb->Validate().ok());

  JoinOptions options;
  options.stream_sweep = c.sweep;
  options.partition_sweep = c.sweep;
  SpatialJoiner joiner(&td.disk, options);
  const JoinInput ia = JoinInput::FromRTree(&*ta);
  const JoinInput ib = JoinInput::FromRTree(&*tb);

  for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                             JoinAlgorithm::kST, JoinAlgorithm::kPQ}) {
    CollectingSink sink;
    auto stats = joiner.Join(ia, ib, &sink, algo);
    ASSERT_TRUE(stats.ok()) << ToString(algo) << ": "
                            << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << ToString(algo);
  }
  // The two extension algorithms must agree as well.
  {
    CollectingSink sink;
    auto stats = BFSJoin(*ta, *tb, &td.disk, options, &sink);
    ASSERT_TRUE(stats.ok()) << "BFS: " << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << "BFS";
  }
  {
    CollectingSink sink;
    auto stats = SSSJStripJoin(da, db, /*strips=*/7, &td.disk, options, &sink);
    ASSERT_TRUE(stats.ok()) << "SSSJ-strip: " << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << "SSSJ-strip";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, JoinEquivalence,
    ::testing::Values(
        EquivalenceCase{Distribution::kUniform, 1500, 1200, 16,
                        SweepStructureKind::kStriped, 1},
        EquivalenceCase{Distribution::kUniform, 1500, 1200, 16,
                        SweepStructureKind::kForward, 2},
        EquivalenceCase{Distribution::kClustered, 2000, 1800, 32,
                        SweepStructureKind::kStriped, 3},
        EquivalenceCase{Distribution::kClustered, 2000, 1800, 8,
                        SweepStructureKind::kForward, 4},
        EquivalenceCase{Distribution::kTiger, 3000, 800, 32,
                        SweepStructureKind::kStriped, 5},
        EquivalenceCase{Distribution::kPoints, 1000, 1000, 16,
                        SweepStructureKind::kStriped, 6},
        EquivalenceCase{Distribution::kMixed, 1600, 1600, 16,
                        SweepStructureKind::kStriped, 7},
        EquivalenceCase{Distribution::kUniform, 50, 3000, 400,
                        SweepStructureKind::kStriped, 8},   // Lopsided.
        EquivalenceCase{Distribution::kUniform, 1, 1, 16,
                        SweepStructureKind::kStriped, 9},   // Minimal.
        EquivalenceCase{Distribution::kTiger, 1000, 1000, 4,
                        SweepStructureKind::kForward, 10}));  // Deep trees.

}  // namespace
}  // namespace sj
