#include "datagen/tiger_gen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/dataset_file.h"
#include "datagen/synthetic.h"
#include "histogram/grid_histogram.h"
#include "sweep/interval_structures.h"
#include "sweep/sweep_join.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::TestDisk;

TEST(PaperDatasets, LadderMatchesTable2AtScaleOne) {
  const auto specs = PaperDatasets(1.0);
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "NJ");
  EXPECT_EQ(specs[0].road_count, 414442u);
  EXPECT_EQ(specs[0].hydro_count, 50853u);
  EXPECT_EQ(specs[5].name, "DISK1-6");
  EXPECT_EQ(specs[5].road_count, 29088173u);
  EXPECT_EQ(specs[5].hydro_count, 7413353u);
}

TEST(PaperDatasets, ScalePreservesRatios) {
  const auto full = PaperDatasets(1.0);
  const auto tiny = PaperDatasets(0.01);
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(tiny[i].road_count),
                0.01 * static_cast<double>(full[i].road_count),
                full[i].road_count * 0.0002 + 1);
  }
  EXPECT_EQ(PaperDataset("NY", 0.5).name, "NY");
}

TEST(TigerGenerator, DeterministicPerSeed) {
  TigerGenerator g1(42), g2(42), g3(43);
  std::vector<RectF> a, b, c;
  g1.GenerateRoads(500, &a);
  g2.GenerateRoads(500, &b);
  g3.GenerateRoads(500, &c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SegmentGeometry, SegmentForRectMbrIsExact) {
  // The refinement payload must round-trip through the filter
  // representation: the generated segment's bounding box is exactly the
  // MBR the join algorithms see, for every distribution.
  const RectF region(0, 0, 250, 250);
  auto check = [](const std::vector<RectF>& rects, bool expect_mixed) {
    const auto geom = SegmentsForRects(rects);
    ASSERT_EQ(geom.size(), rects.size());
    bool saw_main = false, saw_anti = false;
    for (size_t i = 0; i < rects.size(); ++i) {
      EXPECT_EQ(geom[i].Mbr(rects[i].id), rects[i]) << "record " << i;
      if (geom[i].y1 <= geom[i].y2) saw_main = true;
      if (geom[i].y1 > geom[i].y2) saw_anti = true;
    }
    if (expect_mixed) {  // The id hash must actually mix orientations.
      EXPECT_TRUE(saw_main);
      EXPECT_TRUE(saw_anti);
    }
  };
  check(UniformRects(600, region, 2.0f, 1), true);
  check(ClusteredRects(600, region, 5, 10.0f, 2.0f, 2), true);
  // Degenerate points: every "segment" is the point itself.
  check(DiagonalPoints(100, region), false);
}

TEST(TigerGenerator, GeometryVariantsMatchPlainMbrs) {
  TigerGenerator plain(99), with_geom(99);
  std::vector<RectF> roads_plain, roads_geom, hydro_plain, hydro_geom;
  std::vector<Segment> road_segments, hydro_segments;
  plain.GenerateRoads(700, &roads_plain);
  plain.GenerateHydro(300, &hydro_plain);
  with_geom.GenerateRoadsWithGeometry(700, &roads_geom, &road_segments);
  with_geom.GenerateHydroWithGeometry(300, &hydro_geom, &hydro_segments);
  // Same seed, same MBRs — the geometry rides along without perturbing
  // the stream the filter algorithms (and every pinned bench) see.
  EXPECT_EQ(roads_plain, roads_geom);
  EXPECT_EQ(hydro_plain, hydro_geom);
  ASSERT_EQ(road_segments.size(), roads_geom.size());
  ASSERT_EQ(hydro_segments.size(), hydro_geom.size());
  for (size_t i = 0; i < roads_geom.size(); ++i) {
    EXPECT_EQ(road_segments[i].Mbr(roads_geom[i].id), roads_geom[i]);
  }
  for (size_t i = 0; i < hydro_geom.size(); ++i) {
    EXPECT_EQ(hydro_segments[i].Mbr(hydro_geom[i].id), hydro_geom[i]);
  }
}

TEST(TigerGenerator, CountsAndIdsAndBounds) {
  TigerGenerator gen(7);
  std::vector<RectF> roads, hydro;
  gen.GenerateRoads(2000, &roads, /*base_id=*/0);
  gen.GenerateHydro(800, &hydro, /*base_id=*/0);
  ASSERT_EQ(roads.size(), 2000u);
  ASSERT_EQ(hydro.size(), 800u);
  const RectF region = gen.region();
  for (size_t i = 0; i < roads.size(); ++i) {
    EXPECT_EQ(roads[i].id, i);
    EXPECT_TRUE(roads[i].Valid());
    EXPECT_TRUE(region.Contains(roads[i])) << roads[i].ToString();
  }
  for (size_t i = 0; i < hydro.size(); ++i) {
    EXPECT_EQ(hydro[i].id, i);
    EXPECT_TRUE(region.Contains(hydro[i]));
  }
}

TEST(TigerGenerator, RoadsAreSmallHydroElongatedOrBlobby) {
  TigerGenerator gen(11);
  std::vector<RectF> roads;
  gen.GenerateRoads(3000, &roads);
  double mean_w = 0;
  for (const RectF& r : roads) mean_w += (r.xhi - r.xlo) + (r.yhi - r.ylo);
  mean_w /= roads.size();
  // Street segments are a few thousandths of a degree across.
  EXPECT_LT(mean_w, 0.05);
}

TEST(TigerGenerator, JoinSelectivityIsRealistic) {
  // Output of roads x hydro should be within a small factor of the input
  // sizes (Table 2: output comparable to hydro cardinality), not quadratic
  // and not near zero.
  TigerGenerator gen(13);
  std::vector<RectF> roads, hydro;
  gen.GenerateRoads(20000, &roads);
  gen.GenerateHydro(5000, &hydro);
  std::sort(roads.begin(), roads.end(), OrderByYLo());
  std::sort(hydro.begin(), hydro.end(), OrderByYLo());
  VectorRectSource sr(&roads), sh(&hydro);
  StripedSweep a(gen.region(), 1024), b(gen.region(), 1024);
  const SweepRunStats stats = SweepJoinRun(
      sr, sh, a, b, [](const RectF&, const RectF&) {}, [] {});
  EXPECT_GT(stats.output_count, 500u);
  EXPECT_LT(stats.output_count, 20000u * 10);
}

TEST(TigerGenerator, SquareRootRuleHolds) {
  // Güting & Schilling's square-root rule: a sweep line cuts O(sqrt(N))
  // rectangles. Verify the max active set grows much slower than N.
  auto max_active = [](uint64_t n) -> size_t {
    TigerGenerator gen(17);
    std::vector<RectF> roads, empty_side;
    gen.GenerateRoads(n, &roads);
    std::sort(roads.begin(), roads.end(), OrderByYLo());
    VectorRectSource sr(&roads), se(&empty_side);
    ForwardSweep a{}, b{};
    // Join against an empty side: the sweep still inserts/expires side A.
    SweepRunStats stats = SweepJoinRun(
        sr, se, a, b, [](const RectF&, const RectF&) {}, [] {});
    return stats.max_active;
  };
  const size_t at_10k = max_active(10000);
  const size_t at_160k = max_active(160000);
  // 16x the data -> ~4x the cut (sqrt); allow up to 8x.
  EXPECT_LT(at_160k, at_10k * 8) << "active set grows too fast";
}

TEST(UniformRects, Deterministic) {
  EXPECT_EQ(UniformRects(100, RectF(0, 0, 10, 10), 1.0f, 5),
            UniformRects(100, RectF(0, 0, 10, 10), 1.0f, 5));
}

TEST(DiagonalPoints, AreDegenerate) {
  const auto pts = DiagonalPoints(10, RectF(0, 0, 9, 9));
  ASSERT_EQ(pts.size(), 10u);
  for (const RectF& p : pts) {
    EXPECT_EQ(p.xlo, p.xhi);
    EXPECT_EQ(p.ylo, p.yhi);
  }
  EXPECT_EQ(pts[0].xlo, 0.0f);
  EXPECT_EQ(pts[9].xlo, 9.0f);
}

TEST(DatasetFile, RoundTrip) {
  TestDisk td;
  auto pager = td.NewPager("ds");
  const auto rects = UniformRects(1234, RectF(0, 0, 40, 40), 1.0f, 19);
  auto written = WriteDataset(pager.get(), rects, "test-data");
  ASSERT_TRUE(written.ok());
  auto opened = OpenDataset(pager.get(), 0);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->count(), 1234u);
  EXPECT_EQ(opened->extent.xlo, written->extent.xlo);
  StreamReader<RectF> reader(opened->range.pager, opened->range.first_page,
                             opened->range.count);
  size_t i = 0;
  while (auto r = reader.Next()) {
    EXPECT_EQ(*r, rects[i]);
    i++;
  }
  EXPECT_EQ(i, rects.size());
}

TEST(DatasetFile, DetectsBadMagic) {
  TestDisk td;
  auto pager = td.NewPager("ds");
  uint8_t junk[kPageSize] = {1, 2, 3};
  ASSERT_TRUE(pager->WritePage(0, junk).ok());
  auto opened = OpenDataset(pager.get(), 0);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(SkewedGenerators, ZipfMassConcentratesWithTheta) {
  const RectF region(0, 0, 400, 400);
  // Shared geography, independent samples: the two relations' hotspot
  // centers coincide.
  const auto flat = ZipfClusteredRects(20000, region, 8, 0.0, 4.0f, 1.0f,
                                       1, 0, 777);
  const auto skewed = ZipfClusteredRects(20000, region, 8, 1.6, 4.0f, 1.0f,
                                         2, 0, 777);
  // The rank-0 hotspot center is the first draw of the center stream
  // (center_seed 777), reproduced here.
  Random center_rng(777);
  const float top_cx = static_cast<float>(center_rng.UniformDouble(0, 400));
  const float top_cy = static_cast<float>(center_rng.UniformDouble(0, 400));
  // Determinism: same arguments, same output.
  EXPECT_EQ(ZipfClusteredRects(100, region, 8, 1.6, 4.0f, 1.0f, 2, 0, 777),
            ZipfClusteredRects(100, region, 8, 1.6, 4.0f, 1.0f, 2, 0, 777));
  auto near_top = [&](const std::vector<RectF>& rects) {
    const float cx = top_cx, cy = top_cy;
    uint64_t n = 0;
    for (const RectF& r : rects) {
      const float dx = r.CenterX() - cx, dy = r.CenterY() - cy;
      if (dx * dx + dy * dy < 16.0f * 16.0f) n++;
    }
    return n;
  };
  // theta = 0 spreads evenly (~1/8 per hotspot); theta = 1.6 puts about
  // half the mass in the top hotspot.
  EXPECT_LT(near_top(flat), 20000 / 4);
  EXPECT_GT(near_top(skewed), 20000 / 3);
  EXPECT_GT(near_top(skewed), 2 * near_top(flat));
}

TEST(SkewedGenerators, DiagonalBandHugsTheDiagonal) {
  const RectF region(0, 0, 400, 400);
  const auto rects = DiagonalBandRects(5000, region, 5.0f, 1.0f, 4);
  ASSERT_EQ(rects.size(), 5000u);
  uint64_t close = 0;
  for (const RectF& r : rects) {
    if (std::abs(r.CenterX() - r.CenterY()) < 20.0f) close++;
    EXPECT_TRUE(r.Valid());
  }
  EXPECT_GT(close, 4800u);  // ~4 sigma of the perpendicular jitter.
}

TEST(SkewedGenerators, UniformWithCityPacksTheRequestedFraction) {
  const RectF region(0, 0, 400, 400);
  const float side = 20.0f;
  const auto rects = UniformWithCityRects(20000, region, 0.5, side, 0.5f, 5);
  // Find the city by majority: the densest 20x20 cell of a coarse scan.
  GridHistogram hist(region, 20, 20);
  for (const RectF& r : rects) hist.Add(r);
  uint64_t max_cell = 0;
  for (uint32_t y = 0; y < 20; ++y) {
    for (uint32_t x = 0; x < 20; ++x) {
      max_cell = std::max(max_cell, hist.CellCount(x, y));
    }
  }
  // The city square covers one cell's area but may straddle up to four
  // cells; even then its densest cell holds a large multiple of the
  // ~25-records/cell uniform background.
  EXPECT_GT(max_cell, 2000u);
}

TEST(DatasetFile, EmptyDataset) {
  TestDisk td;
  auto pager = td.NewPager("ds");
  ASSERT_TRUE(WriteDataset(pager.get(), {}, "empty").ok());
  auto opened = OpenDataset(pager.get(), 0);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->count(), 0u);
  EXPECT_FALSE(opened->extent.Valid());
}

}  // namespace
}  // namespace sj
