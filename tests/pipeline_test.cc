// The physical-operator pipeline subsystem (src/op/ + PipelineQuery):
// operator semantics against brute-force oracles, builder validation,
// the costed Explain tree, and memory governance — the pipeline's peak
// stays within its arbiter budget and the aggregation spill path is
// bit-identical to the in-memory path.

#include "core/pipeline_query.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "op/operators.h"
#include "op/row.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

// ---------------------------------------------------------------------------
// Oracles (brute-force reimplementations of the operator semantics)
// ---------------------------------------------------------------------------

/// Same truncate-then-clamp cell arithmetic as AggregateByCellOp and
/// GridHistogram::CellRange.
uint32_t CellOf(float v, float lo, float w, uint32_t n) {
  const float rel = (v - lo) / w;
  if (!(rel > 0.0f)) return 0;
  return static_cast<uint32_t>(std::min(rel, static_cast<float>(n - 1)));
}

/// Brute-force AggregateByCell: flat cell index -> aggregate, zero cells
/// dropped (EmitBand skips them). Rows must be passed in pipeline arrival
/// order so per-cell float accumulation matches exactly.
std::map<uint64_t, double> AggregateOracle(const std::vector<PipeRow>& rows,
                                           AggregateMode mode,
                                           const RectF& extent, uint32_t nx,
                                           uint32_t ny) {
  const float cw = (extent.xhi - extent.xlo) / static_cast<float>(nx);
  const float ch = (extent.yhi - extent.ylo) / static_cast<float>(ny);
  std::map<uint64_t, double> cells;
  for (const PipeRow& row : rows) {
    if (!row.rect.Valid() || !row.rect.Intersects(extent)) continue;
    const uint32_t x0 = CellOf(row.rect.xlo, extent.xlo, cw, nx);
    const uint32_t x1 = CellOf(row.rect.xhi, extent.xlo, cw, nx);
    const uint32_t y0 = CellOf(row.rect.ylo, extent.ylo, ch, ny);
    const uint32_t y1 = CellOf(row.rect.yhi, extent.ylo, ch, ny);
    const double v = mode == AggregateMode::kCount ? 1.0 : row.value;
    for (uint32_t iy = y0; iy <= y1; ++iy) {
      for (uint32_t ix = x0; ix <= x1; ++ix) {
        cells[uint64_t{iy} * nx + ix] += v;
      }
    }
  }
  for (auto it = cells.begin(); it != cells.end();) {
    it = (it->second == 0.0) ? cells.erase(it) : std::next(it);
  }
  return cells;
}

/// Same last-cell-closes-on-the-extent tiling as AggregateByCellOp.
RectF CellRectOracle(const RectF& extent, uint32_t nx, uint32_t ny,
                     uint32_t ix, uint32_t iy) {
  const float cw = (extent.xhi - extent.xlo) / static_cast<float>(nx);
  const float ch = (extent.yhi - extent.ylo) / static_cast<float>(ny);
  const float xlo = extent.xlo + static_cast<float>(ix) * cw;
  const float ylo = extent.ylo + static_cast<float>(iy) * ch;
  const float xhi =
      ix + 1 == nx ? extent.xhi : extent.xlo + static_cast<float>(ix + 1) * cw;
  const float yhi =
      iy + 1 == ny ? extent.yhi : extent.ylo + static_cast<float>(iy + 1) * ch;
  return RectF(xlo, ylo, xhi, yhi);
}

/// The aggregate's output rows (ascending flat cell order), built from an
/// oracle cell map.
std::vector<PipeRow> AggregateRowsOracle(const std::map<uint64_t, double>& cells,
                                         const RectF& extent, uint32_t nx,
                                         uint32_t ny) {
  std::vector<PipeRow> rows;
  for (const auto& [cell, v] : cells) {
    PipeRow row;
    const uint32_t ix = static_cast<uint32_t>(cell % nx);
    const uint32_t iy = static_cast<uint32_t>(cell / nx);
    row.rect = CellRectOracle(extent, nx, ny, ix, iy);
    row.ids.push_back(static_cast<ObjectId>(cell));
    row.value = v;
    rows.push_back(std::move(row));
  }
  return rows;
}

/// TopKByDistanceOp's total order, replicated for the oracle.
struct TopKLess {
  float qx, qy;
  bool operator()(const PipeRow& a, const PipeRow& b) const {
    const double da = TopKByDistanceOp::DistanceTo(a.rect, qx, qy);
    const double db = TopKByDistanceOp::DistanceTo(b.rect, qx, qy);
    if (da != db) return da < db;
    if (a.ids != b.ids) return a.ids < b.ids;
    if (a.rect.xlo != b.rect.xlo) return a.rect.xlo < b.rect.xlo;
    if (a.rect.ylo != b.rect.ylo) return a.rect.ylo < b.rect.ylo;
    if (a.rect.xhi != b.rect.xhi) return a.rect.xhi < b.rect.xhi;
    if (a.rect.yhi != b.rect.yhi) return a.rect.yhi < b.rect.yhi;
    return a.value < b.value;
  }
};

std::vector<PipeRow> TopKOracle(std::vector<PipeRow> rows, size_t k, float qx,
                                float qy) {
  std::sort(rows.begin(), rows.end(), TopKLess{qx, qy});
  if (rows.size() > k) rows.resize(k);
  return rows;
}

std::vector<IdPair> RowPairs(const std::vector<PipeRow>& rows) {
  std::vector<IdPair> pairs;
  for (const PipeRow& r : rows) {
    EXPECT_EQ(r.ids.size(), 2u);
    pairs.push_back(IdPair{r.ids[0], r.ids[1]});
  }
  return pairs;
}

const OperatorStats* FindOp(const PipelineStats& stats,
                            const std::string& prefix) {
  for (const OperatorStats& op : stats.operators) {
    if (op.name.rfind(prefix, 0) == 0) return &op;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Fixture
// ---------------------------------------------------------------------------

struct PipelineFixture {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  std::vector<RectF> a, b;
  DatasetRef da, db;
  std::optional<SpatialJoiner> joiner;

  explicit PipelineFixture(uint64_t na = 300, uint64_t nb = 250) {
    const RectF region(0, 0, 80, 80);
    a = UniformRects(na, region, 2.0f, 41);
    b = UniformRects(nb, region, 2.5f, 42);
    da = MakeDataset(&td, a, "a", &keep);
    db = MakeDataset(&td, b, "b", &keep);
    joiner.emplace(&td.disk, JoinOptions());
  }
};

// ---------------------------------------------------------------------------
// WindowScan source
// ---------------------------------------------------------------------------

TEST(WindowScanPipeline, MatchesBruteForceOnStream) {
  PipelineFixture f;
  const RectF window(10, 10, 40, 40);
  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Window(window)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  std::vector<ObjectId> expected;
  for (const RectF& r : f.a) {
    if (r.Intersects(window)) expected.push_back(r.id);
  }
  std::vector<ObjectId> got;
  for (const PipeRow& row : sink.rows()) {
    ASSERT_EQ(row.ids.size(), 1u);
    got.push_back(row.ids[0]);
    EXPECT_EQ(row.value, 1.0);
    EXPECT_EQ(row.rect.id, 0u);  // ids travel in `ids`, not the rect.
  }
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(stats->output_count, expected.size());
  EXPECT_FALSE(stats->operators.empty());
  EXPECT_EQ(stats->operators.front().name, "WindowScan");
}

TEST(WindowScanPipeline, NoWindowScansEverything) {
  PipelineFixture f;
  CollectingRowSink sink;
  auto stats =
      PipelineQuery(*f.joiner).Input(JoinInput::FromStream(f.da)).Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->output_count, f.a.size());
}

TEST(WindowScanPipeline, HistogramPrunesEmptyRegions) {
  // Data clustered in the lower-left corner of a wider extent.
  PipelineFixture f;
  const RectF extent(0, 0, 300, 300);
  GridHistogram hist(extent, 32, 32);
  for (const RectF& r : f.a) hist.Add(r);

  // A window in the empty region: the histogram proves it matches
  // nothing, so the scan emits nothing and reads nothing.
  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .WithHistogram(0, &hist)
                   .Window(RectF(200, 200, 250, 250))
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->output_count, 0u);
  const OperatorStats* scan = FindOp(*stats, "WindowScan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->pages_read, 0u);

  // An overlapping window returns the same rows with or without the
  // histogram (pruning is purely conservative).
  const RectF overlapping(5, 5, 30, 30);
  CollectingRowSink with_hist, without_hist;
  ASSERT_TRUE(PipelineQuery(*f.joiner)
                  .Input(JoinInput::FromStream(f.da))
                  .WithHistogram(0, &hist)
                  .Window(overlapping)
                  .Run(&with_hist)
                  .ok());
  ASSERT_TRUE(PipelineQuery(*f.joiner)
                  .Input(JoinInput::FromStream(f.da))
                  .Window(overlapping)
                  .Run(&without_hist)
                  .ok());
  EXPECT_EQ(with_hist.rows(), without_hist.rows());
  EXPECT_FALSE(with_hist.rows().empty());
}

// ---------------------------------------------------------------------------
// Filter / Project / TopK over a scan source
// ---------------------------------------------------------------------------

TEST(PipelineOps, FilterKeepsExactlyTheMatchingRows) {
  PipelineFixture f;
  auto pred = [](const PipeRow& r) { return r.rect.Area() > 4.0; };
  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Filter(pred, "area>4")
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  uint64_t expected = 0;
  for (const RectF& r : f.a) {
    if (static_cast<double>(r.xhi - r.xlo) * (r.yhi - r.ylo) > 4.0) expected++;
  }
  EXPECT_EQ(stats->output_count, expected);
  for (const PipeRow& row : sink.rows()) EXPECT_TRUE(pred(row));
  const OperatorStats* filter = FindOp(*stats, "Filter(area>4)");
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->rows_in, f.a.size());
  EXPECT_EQ(filter->rows_out, expected);
}

TEST(PipelineOps, ProjectRewritesValues) {
  PipelineFixture f;
  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Project(
                       [](PipeRow r) {
                         r.value = r.rect.Area();
                         return r;
                       },
                       "value=area")
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(sink.rows().size(), f.a.size());
  for (const PipeRow& row : sink.rows()) {
    EXPECT_EQ(row.value, row.rect.Area());
  }
}

TEST(PipelineOps, TopKMatchesOracleAndIsSortedByDistance) {
  PipelineFixture f;
  const float qx = 37.5f, qy = 42.0f;
  const size_t k = 12;
  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .TopKByDistance(k, qx, qy)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // The oracle sorts the scan rows by the operator's own total order.
  std::vector<PipeRow> scan_rows;
  for (const RectF& r : f.a) {
    PipeRow row;
    row.rect = r;
    row.rect.id = 0;
    row.ids.push_back(r.id);
    scan_rows.push_back(std::move(row));
  }
  EXPECT_EQ(sink.rows(), TopKOracle(scan_rows, k, qx, qy));
  EXPECT_EQ(stats->output_count, k);

  // k larger than the input returns everything, still sorted.
  CollectingRowSink all;
  ASSERT_TRUE(PipelineQuery(*f.joiner)
                  .Input(JoinInput::FromStream(f.da))
                  .TopKByDistance(10000, qx, qy)
                  .Run(&all)
                  .ok());
  EXPECT_EQ(all.rows(), TopKOracle(scan_rows, 10000, qx, qy));
}

// ---------------------------------------------------------------------------
// AggregateByCell
// ---------------------------------------------------------------------------

TEST(AggregatePipeline, CountMatchesOracleExactly) {
  PipelineFixture f;
  const RectF extent(0, 0, 80, 80);
  const uint32_t nx = 16, ny = 12;
  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .AggregateByCell(AggregateMode::kCount, nx, ny, extent)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  std::vector<PipeRow> scan_rows;
  for (const RectF& r : f.a) {
    PipeRow row;
    row.rect = r;
    row.rect.id = 0;
    row.ids.push_back(r.id);
    scan_rows.push_back(std::move(row));
  }
  const auto oracle =
      AggregateOracle(scan_rows, AggregateMode::kCount, extent, nx, ny);
  EXPECT_EQ(sink.rows(), AggregateRowsOracle(oracle, extent, nx, ny));
  EXPECT_FALSE(sink.rows().empty());
}

TEST(AggregatePipeline, SumAggregatesProjectedWeights) {
  PipelineFixture f;
  const RectF extent(0, 0, 80, 80);
  const uint32_t nx = 8, ny = 8;
  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Project(
                       [](PipeRow r) {
                         r.value = r.rect.Area();
                         return r;
                       },
                       "value=area")
                   .AggregateByCell(AggregateMode::kSum, nx, ny, extent)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  std::vector<PipeRow> weighted;
  for (const RectF& r : f.a) {
    PipeRow row;
    row.rect = r;
    row.rect.id = 0;
    row.ids.push_back(r.id);
    row.value = row.rect.Area();
    weighted.push_back(std::move(row));
  }
  // Same arrival order => same per-cell accumulation order => exact.
  const auto oracle =
      AggregateOracle(weighted, AggregateMode::kSum, extent, nx, ny);
  EXPECT_EQ(sink.rows(), AggregateRowsOracle(oracle, extent, nx, ny));
}

TEST(AggregatePipeline, SpillPathIsBitIdenticalToInMemory) {
  PipelineFixture f(1500, 1);
  const RectF extent(0, 0, 80, 80);
  const uint32_t nx = 64, ny = 64;

  auto run = [&](size_t budget) {
    CollectingRowSink sink;
    auto stats = PipelineQuery(*f.joiner)
                     .Input(JoinInput::FromStream(f.da))
                     .AggregateByCell(AggregateMode::kCount, nx, ny, extent)
                     .MemoryBytes(budget)
                     .Run(&sink);
    SJ_CHECK_OK(stats.status());
    return std::make_pair(sink.rows(), *stats);
  };

  const auto [ample_rows, ample_stats] = run(64u << 20);
  const auto [tight_rows, tight_stats] = run(kMinMemoryBytes);

  // The tight run actually spilled; the ample one did not.
  const OperatorStats* tight_agg = FindOp(tight_stats, "AggregateByCell");
  const OperatorStats* ample_agg = FindOp(ample_stats, "AggregateByCell");
  ASSERT_NE(tight_agg, nullptr);
  ASSERT_NE(ample_agg, nullptr);
  EXPECT_GT(tight_agg->spill_pages, 0u);
  EXPECT_EQ(ample_agg->spill_pages, 0u);
  EXPECT_GT(tight_stats.disk.pages_written, ample_stats.disk.pages_written);

  // Results are bit-identical regardless of the budget.
  EXPECT_EQ(tight_rows, ample_rows);
  EXPECT_FALSE(ample_rows.empty());
}

// ---------------------------------------------------------------------------
// Join sources
// ---------------------------------------------------------------------------

TEST(JoinPipeline, RowsMatchBruteForcePairs) {
  PipelineFixture f;
  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const auto expected = BruteForcePairs(f.a, f.b);
  EXPECT_EQ(Sorted(RowPairs(sink.rows())), expected);
  EXPECT_EQ(stats->output_count, expected.size());
  EXPECT_GT(stats->candidate_count, 0u);
  EXPECT_NE(stats->join_algorithm, JoinAlgorithm::kAuto);

  // Row rects are the contact boxes of the joined MBRs.
  std::map<ObjectId, RectF> am, bm;
  for (const RectF& r : f.a) am[r.id] = r;
  for (const RectF& r : f.b) bm[r.id] = r;
  for (const PipeRow& row : sink.rows()) {
    RectF expected_rect =
        JoinRowAdapter::ContactBox({am.at(row.ids[0]), bm.at(row.ids[1])});
    EXPECT_EQ(row.rect, expected_rect);
    EXPECT_EQ(row.value, 1.0);
  }
}

TEST(JoinPipeline, KWayRowsMatchTripleOracle) {
  PipelineFixture f(150, 150);
  const RectF region(0, 0, 80, 80);
  const auto c = UniformRects(120, region, 3.0f, 43);
  const DatasetRef dc = MakeDataset(&f.td, c, "c", &f.keep);

  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .Input(JoinInput::FromStream(dc))
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Oracle: ordered triples whose three MBRs share a common point.
  std::vector<std::vector<ObjectId>> expected;
  for (const RectF& ra : f.a) {
    for (const RectF& rb : f.b) {
      if (!ra.Intersects(rb)) continue;
      for (const RectF& rc : c) {
        const float xlo = std::max({ra.xlo, rb.xlo, rc.xlo});
        const float xhi = std::min({ra.xhi, rb.xhi, rc.xhi});
        const float ylo = std::max({ra.ylo, rb.ylo, rc.ylo});
        const float yhi = std::min({ra.yhi, rb.yhi, rc.yhi});
        if (xlo <= xhi && ylo <= yhi) {
          expected.push_back({ra.id, rb.id, rc.id});
        }
      }
    }
  }
  std::vector<std::vector<ObjectId>> got;
  for (const PipeRow& row : sink.rows()) {
    EXPECT_EQ(row.ids.size(), 3u);
    got.push_back(row.ids);
  }
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(expected.empty());
}

TEST(JoinPipeline, FullComposeMatchesOracle) {
  PipelineFixture f;
  const RectF window(5, 5, 60, 60);
  const uint32_t nx = 10, ny = 10;
  const size_t k = 7;
  const float qx = 30.0f, qy = 30.0f;
  auto pred = [](const PipeRow& r) { return r.rect.Area() < 6.0; };

  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .Window(window)
                   .Filter(pred, "small")
                   .AggregateByCell(AggregateMode::kCount, nx, ny, window)
                   .TopKByDistance(k, qx, qy)
                   .MemoryBytes(4u << 20)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Oracle: windowed inputs -> brute-force pairs -> contact boxes ->
  // filter -> aggregate -> top-k. Count aggregation is order-independent,
  // so the join's output order does not matter here.
  std::vector<RectF> wa, wb;
  for (const RectF& r : f.a) {
    if (r.Intersects(window)) wa.push_back(r);
  }
  for (const RectF& r : f.b) {
    if (r.Intersects(window)) wb.push_back(r);
  }
  std::map<ObjectId, RectF> am, bm;
  for (const RectF& r : wa) am[r.id] = r;
  for (const RectF& r : wb) bm[r.id] = r;
  std::vector<PipeRow> join_rows;
  for (const IdPair& p : BruteForcePairs(wa, wb)) {
    PipeRow row;
    row.rect = JoinRowAdapter::ContactBox({am.at(p.a), bm.at(p.b)});
    row.ids = {p.a, p.b};
    if (pred(row)) join_rows.push_back(std::move(row));
  }
  const auto cells =
      AggregateOracle(join_rows, AggregateMode::kCount, window, nx, ny);
  const auto expected =
      TopKOracle(AggregateRowsOracle(cells, window, nx, ny), k, qx, qy);
  EXPECT_EQ(sink.rows(), expected);
  EXPECT_EQ(expected.size(), k);

  // Memory governance: one arbiter spanned the join and the operators,
  // and the whole tree stayed within the budget.
  EXPECT_GT(stats->peak_memory_bytes, 0u);
  EXPECT_LE(stats->peak_memory_bytes, 4u << 20);
  bool saw_op_component = false;
  for (const MemoryComponentStats& c : stats->memory_components) {
    if (c.component.rfind("op.", 0) == 0) saw_op_component = true;
  }
  EXPECT_TRUE(saw_op_component);

  // Every operator in the chain reported stats (join + 3 downstream ops
  // + per-input scans folded in).
  EXPECT_NE(FindOp(*stats, "SpatialJoin["), nullptr);
  EXPECT_NE(FindOp(*stats, "Filter(small)"), nullptr);
  EXPECT_NE(FindOp(*stats, "AggregateByCell"), nullptr);
  EXPECT_NE(FindOp(*stats, "TopKByDistance"), nullptr);
}

TEST(JoinPipeline, RepeatedRunsAreIdentical) {
  PipelineFixture f(120, 100);
  auto query = [&]() {
    return PipelineQuery(*f.joiner)
        .Input(JoinInput::FromStream(f.da))
        .Input(JoinInput::FromStream(f.db))
        .AggregateByCell(AggregateMode::kCount, 8, 8, RectF(0, 0, 80, 80));
  };
  CollectingRowSink first, second;
  ASSERT_TRUE(query().Run(&first).ok());
  ASSERT_TRUE(query().Run(&second).ok());
  EXPECT_EQ(first.rows(), second.rows());
  EXPECT_FALSE(first.rows().empty());
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

TEST(PipelineExplain, PrintsTheCostedOperatorTree) {
  PipelineFixture f;
  auto plan = PipelineQuery(*f.joiner)
                  .Input(JoinInput::FromStream(f.da))
                  .Input(JoinInput::FromStream(f.db))
                  .Window(RectF(5, 5, 60, 60))
                  .Filter([](const PipeRow&) { return true; }, "always")
                  .AggregateByCell(AggregateMode::kCount, 16, 16)
                  .TopKByDistance(8, 30, 30)
                  .Explain();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  EXPECT_TRUE(plan->has_join);
  EXPECT_NE(plan->join.algorithm, JoinAlgorithm::kAuto);
  EXPECT_GT(plan->total_cost_seconds, 0.0);

  // Root-first: the sink-most operator is the top-k.
  ASSERT_FALSE(plan->operators.empty());
  EXPECT_EQ(plan->operators.front().name, "TopKByDistance");

  const std::string tree = plan->Describe();
  for (const char* label :
       {"TopKByDistance", "AggregateByCell", "Filter(always)", "SpatialJoin[",
        "WindowScan"}) {
    EXPECT_NE(tree.find(label), std::string::npos) << tree;
  }

  // The memory plan merges the join's grants with the operators' own.
  bool saw_join_grant = false, saw_op_grant = false;
  for (const MemoryGrantSpec& g : plan->memory.grants) {
    if (g.component.rfind("op.", 0) == 0) saw_op_grant = true;
    if (g.component.rfind("op.", 0) != 0) saw_join_grant = true;
  }
  EXPECT_TRUE(saw_op_grant);
  EXPECT_TRUE(saw_join_grant);

  // Structured form carries the tree too.
  bool saw_kv = false;
  for (const auto& [key, value] : plan->ToKeyValues()) {
    if (key == "op.0.name") {
      EXPECT_EQ(value, "TopKByDistance");
      saw_kv = true;
    }
  }
  EXPECT_TRUE(saw_kv);
}

TEST(PipelineExplain, ScanSourceHasNoJoinDecision) {
  PipelineFixture f;
  auto plan = PipelineQuery(*f.joiner)
                  .Input(JoinInput::FromStream(f.da))
                  .Window(RectF(10, 10, 40, 40))
                  .AggregateByCell(AggregateMode::kCount, 8, 8)
                  .Explain();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->has_join);
  EXPECT_NE(plan->Describe().find("WindowScan"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(PipelineValidation, BuilderErrorsAreInvalidArgument) {
  PipelineFixture f;
  CollectingRowSink sink;

  // No inputs.
  {
    auto s = PipelineQuery(*f.joiner).Run(&sink);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  }
  // A scan source takes no join predicate.
  {
    auto s = PipelineQuery(*f.joiner)
                 .Input(JoinInput::FromStream(f.da))
                 .Predicate(Predicate::kDistanceWithin, 1.0)
                 .Run(&sink);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  }
  // Degenerate aggregate grid.
  {
    auto s = PipelineQuery(*f.joiner)
                 .Input(JoinInput::FromStream(f.da))
                 .AggregateByCell(AggregateMode::kCount, 0, 4)
                 .Run(&sink);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  }
  // k = 0.
  {
    auto s = PipelineQuery(*f.joiner)
                 .Input(JoinInput::FromStream(f.da))
                 .TopKByDistance(0, 1, 1)
                 .Run(&sink);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  }
  // Histogram attached to a nonexistent input.
  {
    GridHistogram hist(RectF(0, 0, 80, 80), 4, 4);
    auto s = PipelineQuery(*f.joiner)
                 .Input(JoinInput::FromStream(f.da))
                 .WithHistogram(5, &hist)
                 .Run(&sink);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  }
  // Aggregate over an input with no resolvable extent (and no window or
  // explicit extent to fall back to).
  {
    DatasetRef no_extent = f.da;
    no_extent.extent = RectF::Empty();
    auto s = PipelineQuery(*f.joiner)
                 .Input(JoinInput::FromStream(no_extent))
                 .AggregateByCell(AggregateMode::kCount, 4, 4)
                 .Run(&sink);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  }
  // Forced algorithm with three inputs (k-way plans its own chain).
  {
    auto s = PipelineQuery(*f.joiner)
                 .Input(JoinInput::FromStream(f.da))
                 .Input(JoinInput::FromStream(f.db))
                 .Input(JoinInput::FromStream(f.da))
                 .Algorithm(JoinAlgorithm::kPBSM)
                 .Run(&sink);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PipelineValidation, BudgetBelowFloorIsFailedPrecondition) {
  PipelineFixture f;
  CollectingRowSink sink;
  auto s = PipelineQuery(*f.joiner)
               .Input(JoinInput::FromStream(f.da))
               .Input(JoinInput::FromStream(f.db))
               .MemoryBytes(kMinMemoryBytes - 1)
               .Run(&sink);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kFailedPrecondition);

  auto plan = PipelineQuery(*f.joiner)
                  .Input(JoinInput::FromStream(f.da))
                  .Input(JoinInput::FromStream(f.db))
                  .MemoryBytes(kMinMemoryBytes - 1)
                  .Explain();
  EXPECT_FALSE(plan.ok());
}

// ---------------------------------------------------------------------------
// Stats plumbing
// ---------------------------------------------------------------------------

TEST(PipelineStatsTest, DescribeAndKeyValuesAreStructured) {
  PipelineFixture f(100, 80);
  CollectingRowSink sink;
  auto stats = PipelineQuery(*f.joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .AggregateByCell(AggregateMode::kCount, 8, 8,
                                    RectF(0, 0, 80, 80))
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_FALSE(stats->Describe().empty());
  EXPECT_FALSE(stats->Describe(f.td.disk.machine()).empty());
  bool saw_output = false, saw_op = false;
  for (const auto& [key, value] : stats->ToKeyValues()) {
    if (key == "output_count") {
      EXPECT_EQ(value, std::to_string(stats->output_count));
      saw_output = true;
    }
    if (key.rfind("op.", 0) == 0) saw_op = true;
  }
  EXPECT_TRUE(saw_output);
  EXPECT_TRUE(saw_op);
  EXPECT_GT(stats->ObservedSeconds(f.td.disk.machine()), 0.0);
}

}  // namespace
}  // namespace sj
