// Pipelines as first-class service citizens: PipelineQuery submissions
// share the SpatialService's global memory budget, worker pool, and
// buffer pool with plain join queries, and N pipelines run concurrently
// compute exactly what each computes standalone. Runs in the concurrency
// test tier (meaningful under -DSJ_TSAN=ON).

#include "service/spatial_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/join_query.h"
#include "core/pipeline_query.h"
#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

struct ServiceFixture {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  std::vector<RectF> a, b;
  DatasetRef da, db;
  std::optional<SpatialJoiner> joiner;

  ServiceFixture() {
    const RectF region(0, 0, 90, 90);
    a = UniformRects(400, region, 2.0f, 51);
    b = UniformRects(350, region, 2.5f, 52);
    da = MakeDataset(&td, a, "a", &keep);
    db = MakeDataset(&td, b, "b", &keep);
    joiner.emplace(&td.disk, JoinOptions());
  }

  PipelineQuery HeatmapQuery(uint32_t nx, uint32_t ny) {
    PipelineQuery q(*joiner);
    q.Input(JoinInput::FromStream(da))
        .Input(JoinInput::FromStream(db))
        .AggregateByCell(AggregateMode::kCount, nx, ny, RectF(0, 0, 90, 90))
        .MemoryBytes(2u << 20);
    return q;
  }

  PipelineQuery ScanQuery(const RectF& window) {
    PipelineQuery q(*joiner);
    q.Input(JoinInput::FromStream(da))
        .Window(window)
        .TopKByDistance(16, 45, 45)
        .MemoryBytes(1u << 20);
    return q;
  }
};

TEST(PipelineService, RunThroughServiceMatchesStandalone) {
  ServiceFixture f;

  // Standalone reference.
  CollectingRowSink standalone;
  PipelineQuery q0 = f.HeatmapQuery(16, 16);
  auto direct = q0.Run(&standalone);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  // Through a multi-tenant service with workers and a shared pool.
  ServiceOptions options;
  options.global_memory_bytes = 64u << 20;
  options.worker_threads = 4;
  options.buffer_pool_pages = 256;
  SpatialService service(options);
  CollectingRowSink via_service;
  PipelineQuery q1 = f.HeatmapQuery(16, 16);
  auto result = service.Run(q1, &via_service);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(via_service.rows(), standalone.rows());
  EXPECT_EQ(result->output_count, direct->output_count);
  EXPECT_FALSE(via_service.rows().empty());
  EXPECT_EQ(service.stats().admitted_full, 1u);
}

TEST(PipelineService, ConcurrentPipelinesAndJoinsShareTheBudget) {
  ServiceFixture f;

  // Standalone references.
  CollectingRowSink heat_ref, scan_ref;
  {
    PipelineQuery q = f.HeatmapQuery(12, 12);
    SJ_CHECK_OK(q.Run(&heat_ref).status());
  }
  {
    PipelineQuery q = f.ScanQuery(RectF(10, 10, 70, 70));
    SJ_CHECK_OK(q.Run(&scan_ref).status());
  }
  const auto pair_ref = BruteForcePairs(f.a, f.b);

  ServiceOptions options;
  options.global_memory_bytes = 24u << 20;  // Forces queueing under load.
  options.worker_threads = 4;
  options.buffer_pool_pages = 128;
  SpatialService service(options);

  constexpr int kRounds = 4;
  std::vector<CollectingRowSink> heat_sinks(kRounds), scan_sinks(kRounds);
  std::vector<CollectingSink> join_sinks(kRounds);
  std::vector<SubmittedPipeline> heat_subs(kRounds), scan_subs(kRounds);
  std::vector<SubmittedQuery> join_subs(kRounds);

  for (int i = 0; i < kRounds; ++i) {
    PipelineQuery heat = f.HeatmapQuery(12, 12);
    heat_subs[i] = service.Submit(heat, &heat_sinks[i]);
    PipelineQuery scan = f.ScanQuery(RectF(10, 10, 70, 70));
    scan_subs[i] = service.Submit(scan, &scan_sinks[i]);
    JoinQuery join(*f.joiner);
    join.Input(JoinInput::FromStream(f.da))
        .Input(JoinInput::FromStream(f.db))
        .MemoryBytes(2u << 20);
    join_subs[i] = service.Submit(join, &join_sinks[i]);
  }

  for (int i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(heat_subs[i].Result().ok())
        << heat_subs[i].Result().status().ToString();
    ASSERT_TRUE(scan_subs[i].Result().ok())
        << scan_subs[i].Result().status().ToString();
    ASSERT_TRUE(join_subs[i].Result().ok())
        << join_subs[i].Result().status().ToString();
    EXPECT_EQ(heat_sinks[i].rows(), heat_ref.rows()) << "round " << i;
    EXPECT_EQ(scan_sinks[i].rows(), scan_ref.rows()) << "round " << i;
    EXPECT_EQ(Sorted(join_sinks[i].pairs()), pair_ref) << "round " << i;
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u * kRounds);
  // The global peak never exceeded the budget.
  EXPECT_LE(stats.global_peak_bytes, options.global_memory_bytes);
  EXPECT_GT(stats.global_peak_bytes, 0u);
}

TEST(PipelineService, RejectsOversizedAndUndersizedPipelines) {
  ServiceFixture f;
  ServiceOptions options;
  options.global_memory_bytes = 8u << 20;
  SpatialService service(options);

  // Budget above the whole global budget: unsatisfiable.
  {
    CollectingRowSink sink;
    PipelineQuery q = f.HeatmapQuery(8, 8);
    q.MemoryBytes(64u << 20);
    SubmitOptions submit;
    submit.allow_degraded = false;
    auto result = service.Run(q, &sink, submit);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
  // Budget below the floor: misuse.
  {
    CollectingRowSink sink;
    PipelineQuery q = f.HeatmapQuery(8, 8);
    q.MemoryBytes(kMinMemoryBytes - 1);
    auto result = service.Run(q, &sink);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  }
  // A validation error inside the pipeline surfaces through the service.
  {
    CollectingRowSink sink;
    PipelineQuery q(*f.joiner);
    q.Input(JoinInput::FromStream(f.da))
        .TopKByDistance(0, 1, 1)
        .MemoryBytes(2u << 20);
    auto result = service.Run(q, &sink);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PipelineService, HandleOutlivesServiceSafely) {
  ServiceFixture f;
  SubmittedPipeline handle;
  CollectingRowSink sink;
  {
    ServiceOptions options;
    options.worker_threads = 2;
    SpatialService service(options);
    PipelineQuery q = f.HeatmapQuery(8, 8);
    handle = service.Submit(q, &sink);
    // The service destructor drains or resolves everything outstanding.
  }
  handle.Wait();
  ASSERT_TRUE(handle.done());
  // Either it ran to completion before the destructor, or it was
  // resolved with an error — never a hang or a crash.
  if (handle.Result().ok()) {
    EXPECT_FALSE(sink.rows().empty());
  }
}

}  // namespace
}  // namespace sj
