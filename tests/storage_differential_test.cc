// The storage-backend invariant: where scratch bytes physically live
// (MemoryBackend vs real files in a tmpdir) and whether the double-buffered
// prefetcher is on must be invisible to everything except measured wall
// time. This file sweeps a randomized workload slice across
// {memory, file} x {prefetch off, on} x {1, 8 threads} for every algorithm
// and checks byte-identical results, identical candidate counts and
// identical modeled I/O against the memory/no-prefetch reference — plus a
// unit-level PrefetchingStreamReader-vs-StreamReader equivalence and a
// k-way (multiway) slice.
//
// Every variant runs against its own freshly built DiskModel + datasets:
// the model's sequential-stream detection is stateful, so sharing one disk
// across runs would make each run's modeled charges depend on what ran
// before it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "io/prefetch.h"
#include "io/storage.h"
#include "io/stream.h"
#include "refine/feature_store.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace sj {
namespace {

using testing_util::BruteForceExactPairs;
using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

// ---------------------------------------------------------------------------
// Unit level: PrefetchingStreamReader yields the exact record sequence and
// the exact modeled charges of the synchronous StreamReader, on both
// backends, with and without a shared pool.
// ---------------------------------------------------------------------------

std::vector<RectF> TestRecords(uint64_t n) {
  std::vector<RectF> rects;
  rects.reserve(n);
  Random rng(77);
  for (uint64_t i = 0; i < n; ++i) {
    const float x = static_cast<float>(rng.UniformDouble(0, 1000));
    const float y = static_cast<float>(rng.UniformDouble(0, 1000));
    rects.push_back(RectF(x, y, x + 1.0f, y + 1.0f, static_cast<ObjectId>(i)));
  }
  return rects;
}

TEST(PrefetchingStreamReader, MatchesSyncReaderOnBothBackends) {
  const std::vector<RectF> records = TestRecords(10000);
  auto file_factory = TmpFileStorageFactory::Make();
  ASSERT_TRUE(file_factory.ok()) << file_factory.status().ToString();

  StorageFactory* factories[] = {nullptr, file_factory->get()};
  for (StorageFactory* factory : factories) {
    SCOPED_TRACE(factory == nullptr ? "memory" : factory->description());

    DiskModel disk(MachineModel::Machine3());
    auto pager = MakePager(factory, &disk, "stream");
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    StreamWriter<RectF> writer(pager->get());
    for (const RectF& r : records) writer.Append(r);
    const PageId first_page = writer.first_page();
    ASSERT_TRUE(writer.Finish().ok());

    // Every scan charges the shared disk; comparing snapshot deltas works
    // because each scan starts from the same stream-detection state (the
    // previous pass always ended at the stream's last page).
    auto read_all = [&](bool prefetch_on, ThreadPool* pool,
                        DiskStats* charged) {
      const DiskStats before = disk.stats();
      std::vector<RectF> got;
      got.reserve(records.size());
      PrefetchContext ctx;
      ctx.enabled = prefetch_on;
      ctx.pool = pool;
      PrefetchingStreamReader<RectF> reader(pager->get(), first_page,
                                            records.size(), ctx);
      while (std::optional<RectF> r = reader.Next()) got.push_back(*r);
      *charged = disk.stats() - before;
      return got;
    };

    DiskStats sync_stats;
    const std::vector<RectF> sync = read_all(false, nullptr, &sync_stats);
    ASSERT_EQ(sync.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(sync[i].id, records[i].id) << "sync record " << i;
    }

    ThreadPool pool(2);
    struct Mode {
      const char* name;
      ThreadPool* pool;
    };
    const Mode modes[] = {{"dedicated-thread", nullptr},
                          {"shared-pool", &pool}};
    for (const Mode& mode : modes) {
      SCOPED_TRACE(mode.name);
      DiskStats prefetch_stats;
      const std::vector<RectF> got =
          read_all(true, mode.pool, &prefetch_stats);
      ASSERT_EQ(got.size(), records.size());
      for (size_t i = 0; i < records.size(); ++i) {
        ASSERT_EQ(got[i].id, records[i].id) << "prefetch record " << i;
        ASSERT_EQ(got[i].xlo, records[i].xlo) << "prefetch record " << i;
      }
      // Modeled charges are identical: same pages, same request runs, same
      // sequential-detection outcome, charged in consumption order.
      EXPECT_EQ(prefetch_stats.pages_read, sync_stats.pages_read);
      EXPECT_EQ(prefetch_stats.read_requests, sync_stats.read_requests);
      EXPECT_EQ(prefetch_stats.sequential_read_requests,
                sync_stats.sequential_read_requests);
      EXPECT_DOUBLE_EQ(prefetch_stats.io_seconds, sync_stats.io_seconds);
    }
  }
}

// Abandoning a prefetching reader mid-stream (error-path unwind) must not
// hang or crash even with a fetch in flight.
TEST(PrefetchingStreamReader, AbandonMidStreamIsSafe) {
  const std::vector<RectF> records = TestRecords(5000);
  DiskModel disk(MachineModel::Machine3());
  auto pager = MakeMemoryPager(&disk, "stream");
  StreamWriter<RectF> writer(pager.get());
  for (const RectF& r : records) writer.Append(r);
  const PageId first_page = writer.first_page();
  ASSERT_TRUE(writer.Finish().ok());

  ThreadPool pool(2);
  for (uint64_t consume : {0u, 1u, 700u}) {
    PrefetchContext ctx;
    ctx.enabled = true;
    ctx.pool = &pool;
    PrefetchingStreamReader<RectF> reader(pager.get(), first_page,
                                          records.size(), ctx);
    for (uint64_t i = 0; i < consume; ++i) {
      ASSERT_TRUE(reader.Next().has_value());
    }
    // Destructor runs with block N+1 queued or in flight.
  }
}

// ---------------------------------------------------------------------------
// The join-level differential matrix.
// ---------------------------------------------------------------------------

struct StorageWorkload {
  std::vector<RectF> a, b;
  size_t memory_bytes;
  std::string description;
};

StorageWorkload MakeWorkload(uint64_t seed) {
  Random rng(seed);
  StorageWorkload w;
  const RectF region(0, 0, 400, 400);
  const uint64_t na = 500 + rng.Uniform(900);
  const uint64_t nb = 500 + rng.Uniform(900);
  std::ostringstream desc;
  // Side b stays uniform (covers the whole region) so the join is
  // non-empty no matter where side a's mass lands.
  if (rng.Uniform(2) == 0) {
    w.a = UniformRects(na, region, 2.5f, rng.Next());
    desc << "uniform";
  } else {
    w.a = ClusteredRects(na, region, 5, 14.0f, 2.0f, rng.Next());
    desc << "clustered";
  }
  w.b = UniformRects(nb, region, 2.0f, rng.Next());
  // Alternate a spill-heavy budget (every sort/partition goes through the
  // backend) with a comfortable one (mostly resident).
  w.memory_bytes = (seed & 1) ? (256u << 10) : (24u << 20);
  desc << " n=" << na << "x" << nb << " mem=" << (w.memory_bytes >> 10)
       << "KB";
  w.description = desc.str();
  return w;
}

struct RunResult {
  std::vector<IdPair> pairs;
  uint64_t candidate_count = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  double io_seconds = 0.0;
  double io_wall_seconds = 0.0;
};

struct Variant {
  bool file_backend;
  bool prefetch;
  uint32_t threads;

  std::string Name() const {
    std::ostringstream os;
    os << (file_backend ? "file" : "memory") << "/"
       << (prefetch ? "prefetch" : "sync") << "/t" << threads;
    return os.str();
  }
};

// A freshly built environment for one variant run: its own DiskModel (the
// model's stream detection is stateful), datasets, trees and stores over
// identical data.
struct Environment {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  DatasetRef da, db;
  std::unique_ptr<Pager> geom_a_pager, geom_b_pager;
  std::unique_ptr<Pager> tree_a_pager, tree_b_pager, scratch;
  std::optional<FeatureStore> store_a, store_b;
  std::optional<RTree> ta, tb;
};

std::unique_ptr<Environment> BuildEnvironment(
    const StorageWorkload& w, const std::vector<Segment>& ga,
    const std::vector<Segment>& gb) {
  auto env = std::make_unique<Environment>();
  env->da = MakeDataset(&env->td, w.a, "a", &env->keep);
  env->db = MakeDataset(&env->td, w.b, "b", &env->keep);
  env->geom_a_pager = env->td.NewPager("geom.a");
  env->geom_b_pager = env->td.NewPager("geom.b");
  auto sa = FeatureStore::Build(env->geom_a_pager.get(), ga, "a");
  auto sb = FeatureStore::Build(env->geom_b_pager.get(), gb, "b");
  if (!sa.ok() || !sb.ok()) return nullptr;
  env->store_a.emplace(std::move(*sa));
  env->store_b.emplace(std::move(*sb));
  env->tree_a_pager = env->td.NewPager("tree.a");
  env->tree_b_pager = env->td.NewPager("tree.b");
  env->scratch = env->td.NewPager("scratch");
  RTreeParams params;
  params.max_entries = 16;
  auto ta = RTree::BulkLoadHilbert(env->tree_a_pager.get(), env->da.range,
                                   env->scratch.get(), params, 1 << 22);
  auto tb = RTree::BulkLoadHilbert(env->tree_b_pager.get(), env->db.range,
                                   env->scratch.get(), params, 1 << 22);
  if (!ta.ok() || !tb.ok()) return nullptr;
  env->ta.emplace(std::move(*ta));
  env->tb.emplace(std::move(*tb));
  return env;
}

TEST(StorageDifferential, BackendAndPrefetchAreInvisibleToResults) {
  // SJ_DIFF_SEED / SJ_DIFF_WORKLOADS replay conventions match
  // join_equivalence_test's randomized harness.
  uint64_t base_seed = 0x570A6E26u;
  int workloads = 2;
  if (const char* n = std::getenv("SJ_DIFF_WORKLOADS")) {
    workloads = std::max(1, std::atoi(n));
  }
  if (const char* replay = std::getenv("SJ_DIFF_SEED")) {
    base_seed = std::strtoull(replay, nullptr, 0);
    if (std::getenv("SJ_DIFF_WORKLOADS") == nullptr) workloads = 1;
  }

  const Variant variants[] = {
      {false, false, 1},  // Reference: memory, sync, serial.
      {false, false, 8}, {false, true, 1},  {false, true, 8},
      {true, false, 1},  {true, false, 8}, {true, true, 1},
      {true, true, 8},
  };

  for (int trial = 0; trial < workloads; ++trial) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
    const StorageWorkload w = MakeWorkload(seed);
    SCOPED_TRACE("workload [" + w.description +
                 "] — replay with SJ_DIFF_SEED=" + std::to_string(seed));

    const auto ga = SegmentsForRects(w.a);
    const auto gb = SegmentsForRects(w.b);
    const auto expected_filter = BruteForcePairs(w.a, w.b);
    const auto expected_exact = BruteForceExactPairs(w.a, w.b, ga, gb);
    ASSERT_FALSE(expected_filter.empty());

    // (algo, refine) -> reference result from the first (memory/sync/t1)
    // variant.
    std::map<std::pair<int, bool>, RunResult> reference;

    for (const Variant& v : variants) {
      // Fresh disk + datasets + trees per variant: identical build I/O,
      // identical stream-detection state at query time.
      std::unique_ptr<Environment> env = BuildEnvironment(w, ga, gb);
      ASSERT_NE(env, nullptr);

      std::shared_ptr<StorageFactory> storage;
      if (v.file_backend) {
        auto file_factory = TmpFileStorageFactory::Make();
        ASSERT_TRUE(file_factory.ok()) << file_factory.status().ToString();
        storage = std::move(*file_factory);
      }

      JoinOptions base;
      base.memory_bytes = w.memory_bytes;
      SpatialJoiner joiner(&env->td.disk, base);

      for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                                 JoinAlgorithm::kST, JoinAlgorithm::kPQ}) {
        const bool indexed =
            algo == JoinAlgorithm::kST || algo == JoinAlgorithm::kPQ;
        JoinInput ia = indexed ? JoinInput::FromRTree(&*env->ta)
                               : JoinInput::FromStream(env->da);
        JoinInput ib = indexed ? JoinInput::FromRTree(&*env->tb)
                               : JoinInput::FromStream(env->db);
        ia.WithFeatures(&*env->store_a);
        ib.WithFeatures(&*env->store_b);

        for (bool refine : {false, true}) {
          const auto& expected = refine ? expected_exact : expected_filter;
          const std::string variant_name =
              std::string(ToString(algo)) + (refine ? " refined " : " filter ") +
              v.Name();
          SCOPED_TRACE(variant_name);
          CollectingSink sink;
          auto stats = JoinQuery(joiner)
                           .Input(ia)
                           .Input(ib)
                           .Algorithm(algo)
                           .Threads(v.threads)
                           .Refine(refine)
                           .RefineBatchPairs(512)
                           .Storage(storage)
                           .Prefetch(v.prefetch)
                           .Run(&sink);
          ASSERT_TRUE(stats.ok()) << stats.status().ToString();

          RunResult r;
          r.pairs = Sorted(sink.pairs());
          r.candidate_count = stats->candidate_count;
          r.pages_read = stats->disk.pages_read;
          r.pages_written = stats->disk.pages_written;
          r.io_seconds = stats->disk.io_seconds;
          r.io_wall_seconds = stats->disk.io_wall_seconds;

          EXPECT_EQ(r.pairs, expected);
          // Measured wall is the only quantity allowed to move; it must at
          // least stay sane.
          EXPECT_GE(r.io_wall_seconds, 0.0);

          const auto key = std::make_pair(static_cast<int>(algo), refine);
          auto it = reference.find(key);
          if (it == reference.end()) {
            reference.emplace(key, std::move(r));
            continue;
          }
          const RunResult& ref = it->second;
          EXPECT_EQ(r.candidate_count, ref.candidate_count);
          EXPECT_EQ(r.pages_read, ref.pages_read);
          EXPECT_EQ(r.pages_written, ref.pages_written);
          EXPECT_DOUBLE_EQ(r.io_seconds, ref.io_seconds);
        }
      }
    }
  }
}

// The k-way chain goes through its own distribution/materialization code.
// The serial executor path (lazy sources) and the parallel path
// (materialize + strip-partition) are different pipelines with different
// modeled I/O, so backend/prefetch invariance is checked within each
// thread count; result tuples must agree across everything.
TEST(StorageDifferential, MultiwayBackendAndPrefetchAgree) {
  const RectF region(0, 0, 300, 300);
  Random rng(0xCAFE);
  std::vector<std::vector<RectF>> data;
  for (int i = 0; i < 3; ++i) {
    data.push_back(UniformRects(600, region, 3.0f, rng.Next()));
  }

  std::vector<std::vector<ObjectId>> expected_tuples;
  bool have_expected = false;

  for (uint32_t threads : {1u, 8u}) {
    uint64_t reference_candidates = 0;
    double reference_io = 0.0;
    uint64_t reference_pages = 0;
    bool have_reference = false;

    const Variant variants[] = {
        {false, false, threads},  // Per-thread-count reference.
        {false, true, threads},
        {true, false, threads},
        {true, true, threads},
    };
    for (const Variant& v : variants) {
      SCOPED_TRACE(v.Name());
      TestDisk td;
      std::vector<std::unique_ptr<Pager>> keep;
      std::vector<DatasetRef> inputs;
      for (size_t i = 0; i < data.size(); ++i) {
        inputs.push_back(
            MakeDataset(&td, data[i], "in" + std::to_string(i), &keep));
      }
      std::shared_ptr<StorageFactory> storage;
      if (v.file_backend) {
        auto file_factory = TmpFileStorageFactory::Make();
        ASSERT_TRUE(file_factory.ok()) << file_factory.status().ToString();
        storage = std::move(*file_factory);
      }

      JoinOptions base;
      base.memory_bytes = 1u << 20;  // Small: strips go through storage.
      SpatialJoiner joiner(&td.disk, base);

      CollectingTupleSink sink;
      JoinQuery q(joiner);
      for (const DatasetRef& in : inputs) q.Input(JoinInput::FromStream(in));
      auto stats = q.Threads(v.threads)
                       .Storage(storage)
                       .Prefetch(v.prefetch)
                       .Run(&sink);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      auto tuples = sink.tuples();
      std::sort(tuples.begin(), tuples.end());
      EXPECT_GT(tuples.size(), 0u);
      if (!have_expected) {
        expected_tuples = tuples;
        have_expected = true;
      } else {
        EXPECT_EQ(tuples, expected_tuples);
      }
      if (!have_reference) {
        reference_candidates = stats->candidate_count;
        reference_io = stats->disk.io_seconds;
        reference_pages = stats->disk.pages_read;
        have_reference = true;
        continue;
      }
      EXPECT_EQ(stats->candidate_count, reference_candidates);
      EXPECT_EQ(stats->disk.pages_read, reference_pages);
      EXPECT_DOUBLE_EQ(stats->disk.io_seconds, reference_io);
    }
  }
}

}  // namespace
}  // namespace sj
