#include "geometry/polygon.h"

#include <gtest/gtest.h>

namespace sj {
namespace {

PolygonF UnitSquare() {
  return PolygonF{{{0, 0}, {1, 0}, {1, 1}, {0, 1}}};
}

/// A concave "C" shape opening to the right: the notch spans
/// x in (1, 3], y in (1, 2).
PolygonF CShape() {
  return PolygonF{{{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 2}, {3, 2}, {3, 3},
                   {0, 3}}};
}

TEST(SegmentIntersectsRect, EndpointInside) {
  const RectF r(0, 0, 10, 10);
  EXPECT_TRUE(SegmentIntersectsRect(Segment(5, 5, 20, 20), r));
  EXPECT_TRUE(SegmentIntersectsRect(Segment(-5, -5, 5, 5), r));
}

TEST(SegmentIntersectsRect, CrossesWithoutEndpointInside) {
  const RectF r(0, 0, 10, 10);
  // Straight through horizontally, vertically, and diagonally.
  EXPECT_TRUE(SegmentIntersectsRect(Segment(-5, 5, 15, 5), r));
  EXPECT_TRUE(SegmentIntersectsRect(Segment(5, -5, 5, 15), r));
  EXPECT_TRUE(SegmentIntersectsRect(Segment(-1, 11, 11, -1), r));
}

TEST(SegmentIntersectsRect, TouchingCountsClosedSemantics) {
  const RectF r(0, 0, 10, 10);
  // Grazes the corner at exactly one point.
  EXPECT_TRUE(SegmentIntersectsRect(Segment(-5, 15, 5, 5), r));
  // Runs along an edge.
  EXPECT_TRUE(SegmentIntersectsRect(Segment(-5, 0, 15, 0), r));
  // Endpoint exactly on the boundary.
  EXPECT_TRUE(SegmentIntersectsRect(Segment(10, 5, 20, 5), r));
}

TEST(SegmentIntersectsRect, Disjoint) {
  const RectF r(0, 0, 10, 10);
  EXPECT_FALSE(SegmentIntersectsRect(Segment(11, 0, 20, 10), r));
  EXPECT_FALSE(SegmentIntersectsRect(Segment(-5, 12, 15, 12), r));
  // MBRs overlap but the segment passes outside the corner.
  EXPECT_FALSE(SegmentIntersectsRect(Segment(9, 20, 20, 9), r));
}

TEST(SegmentIntersectsRect, DegeneratePointSegment) {
  const RectF r(0, 0, 10, 10);
  EXPECT_TRUE(SegmentIntersectsRect(Segment(5, 5, 5, 5), r));
  EXPECT_TRUE(SegmentIntersectsRect(Segment(0, 0, 0, 0), r));
  EXPECT_FALSE(SegmentIntersectsRect(Segment(11, 11, 11, 11), r));
}

TEST(PointInPolygon, SquareInteriorBoundaryExterior) {
  const PolygonF sq = UnitSquare();
  EXPECT_TRUE(PointInPolygon(0.5f, 0.5f, sq));
  // Boundary: edges, vertices.
  EXPECT_TRUE(PointInPolygon(0.0f, 0.5f, sq));
  EXPECT_TRUE(PointInPolygon(1.0f, 1.0f, sq));
  EXPECT_TRUE(PointInPolygon(0.5f, 0.0f, sq));
  EXPECT_FALSE(PointInPolygon(1.5f, 0.5f, sq));
  EXPECT_FALSE(PointInPolygon(0.5f, -0.1f, sq));
}

TEST(PointInPolygon, ConcaveNotch) {
  const PolygonF c = CShape();
  EXPECT_TRUE(PointInPolygon(0.5f, 1.5f, c));   // Spine of the C.
  EXPECT_FALSE(PointInPolygon(2.0f, 1.5f, c));  // Inside the notch.
  EXPECT_TRUE(PointInPolygon(2.0f, 0.5f, c));   // Lower arm.
  EXPECT_TRUE(PointInPolygon(2.0f, 2.5f, c));   // Upper arm.
}

TEST(RectIntersectsPolygon, EdgeCrossing) {
  const PolygonF sq = UnitSquare();
  EXPECT_TRUE(RectIntersectsPolygon(RectF(0.5f, 0.5f, 2, 2), sq));
  EXPECT_TRUE(RectIntersectsPolygon(RectF(-1, -1, 0.25f, 0.25f), sq));
}

TEST(RectIntersectsPolygon, ContainmentBothWays) {
  const PolygonF sq = UnitSquare();
  // Rectangle strictly inside the polygon (no edge touches).
  EXPECT_TRUE(RectIntersectsPolygon(RectF(0.4f, 0.4f, 0.6f, 0.6f), sq));
  // Polygon strictly inside the rectangle.
  EXPECT_TRUE(RectIntersectsPolygon(RectF(-1, -1, 2, 2), sq));
}

TEST(RectIntersectsPolygon, DisjointAndNotchMiss) {
  const PolygonF sq = UnitSquare();
  EXPECT_FALSE(RectIntersectsPolygon(RectF(2, 2, 3, 3), sq));
  // A rectangle entirely inside the C's notch: its MBR overlaps the
  // polygon's MBR, but the exact shapes are disjoint — the case the
  // refinement step exists to reject.
  const PolygonF c = CShape();
  EXPECT_TRUE(c.Mbr().Intersects(RectF(1.5f, 1.25f, 2.5f, 1.75f)));
  EXPECT_FALSE(RectIntersectsPolygon(RectF(1.5f, 1.25f, 2.5f, 1.75f), c));
}

TEST(RectIntersectsPolygon, BoundaryTouch) {
  const PolygonF sq = UnitSquare();
  // Shares exactly one edge / one corner (closed semantics).
  EXPECT_TRUE(RectIntersectsPolygon(RectF(1, 0, 2, 1), sq));
  EXPECT_TRUE(RectIntersectsPolygon(RectF(1, 1, 2, 2), sq));
}

TEST(PolygonMbr, CoversAllVertices) {
  const PolygonF c = CShape();
  const RectF box = c.Mbr(42);
  EXPECT_EQ(box, RectF(0, 0, 3, 3, 42));
}

}  // namespace
}  // namespace sj
