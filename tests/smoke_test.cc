#include <gtest/gtest.h>

#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "join/pbsm.h"
#include "join/pq_join.h"
#include "join/sssj.h"
#include "join/st_join.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

TEST(Smoke, AllFourAlgorithmsAgreeWithBruteForce) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 100, 100);
  const auto a = UniformRects(800, region, 2.0f, /*seed=*/1);
  const auto b = UniformRects(600, region, 3.0f, /*seed=*/2);
  const auto expected = BruteForcePairs(a, b);

  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  JoinOptions options;

  // SSSJ.
  {
    CollectingSink sink;
    auto stats = SSSJJoin(da, db, &td.disk, options, &sink);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected);
    EXPECT_EQ(stats->output_count, expected.size());
  }
  // PBSM.
  {
    CollectingSink sink;
    auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected);
  }
  // Build trees for the index-based joins.
  auto tree_pager_a = td.NewPager("tree.a");
  auto tree_pager_b = td.NewPager("tree.b");
  auto scratch = td.NewPager("scratch");
  RTreeParams params;
  params.max_entries = 32;  // Small fanout so the trees have height > 1.
  auto ta = RTree::BulkLoadHilbert(tree_pager_a.get(), da.range,
                                   scratch.get(), params, 1 << 20);
  ASSERT_TRUE(ta.ok()) << ta.status().ToString();
  auto tb = RTree::BulkLoadHilbert(tree_pager_b.get(), db.range,
                                   scratch.get(), params, 1 << 20);
  ASSERT_TRUE(tb.ok()) << tb.status().ToString();
  ASSERT_TRUE(ta->Validate().ok());
  ASSERT_TRUE(tb->Validate().ok());
  // ST.
  {
    CollectingSink sink;
    auto stats = STJoin(*ta, *tb, &td.disk, options, &sink);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected);
  }
  // PQ.
  {
    CollectingSink sink;
    auto stats = PQJoin(*ta, *tb, &td.disk, options, &sink);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected);
    EXPECT_EQ(stats->index_pages_read,
              ta->node_count() + tb->node_count());
  }
}

}  // namespace
}  // namespace sj
