#include "sort/external_pq.h"

#include <gtest/gtest.h>

#include <queue>

#include "test_util.h"
#include "util/random.h"

namespace sj {
namespace {

using testing_util::TestDisk;

struct IntLess {
  bool operator()(uint64_t a, uint64_t b) const { return a < b; }
};

TEST(ExternalPriorityQueue, InMemoryRegimeNeverSpills) {
  TestDisk td;
  auto spill = td.NewPager("spill");
  ExternalPriorityQueue<uint64_t, IntLess> pq(1 << 20, spill.get());
  Random rng(1);
  for (int i = 0; i < 1000; ++i) pq.Push(rng.Uniform(1000000));
  EXPECT_EQ(pq.SpilledRuns(), 0u);
  EXPECT_EQ(td.disk.stats().pages_written, 0u);
  uint64_t prev = 0;
  uint64_t count = 0;
  while (auto v = pq.PopMin()) {
    EXPECT_GE(*v, prev);
    prev = *v;
    count++;
  }
  EXPECT_EQ(count, 1000u);
}

TEST(ExternalPriorityQueue, SpillsAndStaysSorted) {
  TestDisk td;
  auto spill = td.NewPager("spill");
  // Budget for ~128 elements: a 50k-element workload spills heavily.
  ExternalPriorityQueue<uint64_t, IntLess> pq(128 * sizeof(uint64_t),
                                              spill.get());
  Random rng(2);
  std::vector<uint64_t> inserted;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t v = rng.Uniform(1u << 30);
    inserted.push_back(v);
    pq.Push(v);
  }
  EXPECT_GT(pq.SpilledRuns(), 0u);
  EXPECT_GT(td.disk.stats().pages_written, 0u);
  EXPECT_EQ(pq.Size(), inserted.size());

  std::sort(inserted.begin(), inserted.end());
  for (uint64_t expected : inserted) {
    auto v = pq.PopMin();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, expected);
  }
  EXPECT_FALSE(pq.PopMin().has_value());
  EXPECT_TRUE(pq.Empty());
}

TEST(ExternalPriorityQueue, InterleavedPushPopMatchesStdPq) {
  // The PQ-traversal access pattern: pops interleaved with pushes of keys
  // >= the last popped key (children have larger ylo than their parent),
  // plus occasional arbitrary pushes.
  TestDisk td;
  auto spill = td.NewPager("spill");
  ExternalPriorityQueue<uint64_t, IntLess> pq(256 * sizeof(uint64_t),
                                              spill.get());
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> ref;
  Random rng(3);
  for (int round = 0; round < 20000; ++round) {
    const double action = rng.UniformDouble(0, 1);
    if (action < 0.55 || ref.empty()) {
      const uint64_t v = rng.Uniform(1u << 20);
      pq.Push(v);
      ref.push(v);
    } else {
      auto got = pq.PopMin();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, ref.top());
      ref.pop();
    }
    if (round % 1000 == 0) {
      auto peek = pq.PeekMin();
      if (ref.empty()) {
        EXPECT_FALSE(peek.has_value());
      } else {
        ASSERT_TRUE(peek.has_value());
        EXPECT_EQ(*peek, ref.top());
      }
    }
  }
  while (!ref.empty()) {
    auto got = pq.PopMin();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, ref.top());
    ref.pop();
  }
  EXPECT_TRUE(pq.Empty());
}

TEST(ExternalPriorityQueue, MemoryStaysBounded) {
  TestDisk td;
  auto spill = td.NewPager("spill");
  const size_t budget = 1024 * sizeof(uint64_t);
  ExternalPriorityQueue<uint64_t, IntLess> pq(budget, spill.get());
  Random rng(4);
  size_t max_heap_bytes = 0;
  for (int i = 0; i < 200000; ++i) {
    pq.Push(rng.Uniform(1u << 30));
    max_heap_bytes = std::max(max_heap_bytes, pq.MemoryBytes());
  }
  // Heap portion respects the budget (cursor buffers are accounted but
  // proportional to runs, which stay modest: each spill halves the heap).
  EXPECT_LE(max_heap_bytes,
            budget + sizeof(uint64_t) +
                pq.OpenRuns() * 2 * kPageSize);
}

TEST(ExternalPriorityQueue, GrantDrivenBudgetShrinksAndRecordsUsage) {
  // With an arbiter, the queue's budget is a tracked "pq.queue" grant
  // shrunk to what remains; the squeezed heap spills sooner and its
  // sampled footprint lands in the component high-water marks.
  TestDisk td;
  auto spill = td.NewPager("spill");
  MemoryArbiter arbiter(4096 * sizeof(uint64_t));
  auto other = arbiter.Acquire("sweep", 3584 * sizeof(uint64_t));
  ASSERT_TRUE(other.ok());
  ExternalPriorityQueue<uint64_t, IntLess> pq(4096 * sizeof(uint64_t),
                                              spill.get(), IntLess(),
                                              &arbiter);
  // Only 512 records' worth was available, so the queue spills far
  // sooner than its requested budget would.
  Random rng(6);
  std::vector<uint64_t> inserted;
  for (int i = 0; i < 4000; ++i) {
    const uint64_t v = rng.Uniform(1u << 20);
    inserted.push_back(v);
    pq.Push(v);
  }
  EXPECT_GT(pq.SpilledRuns(), 0u);
  EXPECT_LE(arbiter.peak_bytes(), arbiter.budget());
  bool recorded = false;
  for (const auto& c : arbiter.ComponentStats()) {
    if (c.component == grants::kPqQueue) {
      EXPECT_EQ(c.granted_high_water, 512 * sizeof(uint64_t));
      EXPECT_GT(c.used_high_water, 0u);
      recorded = true;
    }
  }
  EXPECT_TRUE(recorded);
  std::sort(inserted.begin(), inserted.end());
  for (uint64_t expected : inserted) {
    auto v = pq.PopMin();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, expected);
  }
  EXPECT_TRUE(pq.Empty());
}

TEST(ExternalPriorityQueue, DuplicateKeys) {
  TestDisk td;
  auto spill = td.NewPager("spill");
  ExternalPriorityQueue<uint64_t, IntLess> pq(64 * sizeof(uint64_t),
                                              spill.get());
  for (int i = 0; i < 5000; ++i) pq.Push(7);
  for (int i = 0; i < 5000; ++i) {
    auto v = pq.PopMin();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7u);
  }
  EXPECT_TRUE(pq.Empty());
}

TEST(ExternalPriorityQueue, RectRecordsByYlo) {
  // The actual record type the PQ join would spill.
  TestDisk td;
  auto spill = td.NewPager("spill");
  ExternalPriorityQueue<RectF, OrderByYLo> pq(100 * sizeof(RectF),
                                              spill.get());
  Random rng(5);
  for (ObjectId i = 0; i < 10000; ++i) {
    const float y = static_cast<float>(rng.UniformDouble(0, 1000));
    pq.Push(RectF(0, y, 1, y + 1, i));
  }
  float prev = -1;
  uint64_t n = 0;
  while (auto r = pq.PopMin()) {
    EXPECT_GE(r->ylo, prev);
    prev = r->ylo;
    n++;
  }
  EXPECT_EQ(n, 10000u);
}

}  // namespace
}  // namespace sj
