#include "geometry/segment.h"

#include <gtest/gtest.h>

namespace sj {
namespace {

TEST(Segment, MbrNormalizesCorners) {
  const Segment s(5, 7, 1, 2);
  const RectF mbr = s.Mbr(42);
  EXPECT_EQ(mbr.xlo, 1);
  EXPECT_EQ(mbr.ylo, 2);
  EXPECT_EQ(mbr.xhi, 5);
  EXPECT_EQ(mbr.yhi, 7);
  EXPECT_EQ(mbr.id, 42u);
}

TEST(SegmentsIntersect, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect(Segment(0, 0, 10, 10), Segment(0, 10, 10, 0)));
  EXPECT_TRUE(SegmentsIntersect(Segment(-5, 0, 5, 0), Segment(0, -5, 0, 5)));
}

TEST(SegmentsIntersect, DisjointButMbrOverlapping) {
  // The canonical filter-step false positive: MBRs intersect, segments do
  // not — exactly what the refinement step must reject.
  const Segment a(0, 0, 10, 10);
  const Segment b(6, 0, 10, 4);
  EXPECT_TRUE(a.Mbr().Intersects(b.Mbr()));
  EXPECT_FALSE(SegmentsIntersect(a, b));
}

TEST(SegmentsIntersect, EndpointTouch) {
  EXPECT_TRUE(SegmentsIntersect(Segment(0, 0, 5, 5), Segment(5, 5, 9, 1)));
  EXPECT_TRUE(SegmentsIntersect(Segment(0, 0, 5, 5), Segment(3, 3, 9, 1)));
}

TEST(SegmentsIntersect, CollinearOverlapAndGap) {
  EXPECT_TRUE(SegmentsIntersect(Segment(0, 0, 5, 0), Segment(3, 0, 9, 0)));
  EXPECT_TRUE(SegmentsIntersect(Segment(0, 0, 5, 0), Segment(5, 0, 9, 0)));
  EXPECT_FALSE(SegmentsIntersect(Segment(0, 0, 4, 0), Segment(5, 0, 9, 0)));
}

TEST(SegmentsIntersect, ParallelNonCollinear) {
  EXPECT_FALSE(SegmentsIntersect(Segment(0, 0, 5, 0), Segment(0, 1, 5, 1)));
}

TEST(SegmentsIntersect, DegeneratePointSegments) {
  const Segment point(2, 2, 2, 2);
  EXPECT_TRUE(SegmentsIntersect(point, Segment(0, 0, 5, 5)));   // On it.
  EXPECT_FALSE(SegmentsIntersect(point, Segment(0, 0, 5, 4)));  // Off it.
  EXPECT_TRUE(SegmentsIntersect(point, point));
}

}  // namespace
}  // namespace sj
