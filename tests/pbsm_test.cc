#include "join/pbsm.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

struct PbsmCase {
  uint64_t n;
  uint32_t tiles;
  size_t memory;
  bool clustered;
  uint64_t seed;
};

class PbsmParamTest : public ::testing::TestWithParam<PbsmCase> {};

TEST_P(PbsmParamTest, ExactDuplicateFreeOutput) {
  const PbsmCase c = GetParam();
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 500, 500);
  const auto a = c.clustered
                     ? ClusteredRects(c.n, region, 5, 8.0f, 2.0f, c.seed)
                     : UniformRects(c.n, region, 2.0f, c.seed);
  const auto b = c.clustered
                     ? ClusteredRects(c.n, region, 5, 8.0f, 2.0f, c.seed + 1)
                     : UniformRects(c.n, region, 2.0f, c.seed + 1);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);

  JoinOptions options;
  options.pbsm_tiles_per_axis = c.tiles;
  options.memory_bytes = c.memory;
  CollectingSink sink;
  auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Output must equal brute force exactly — this asserts both no missing
  // pairs and no duplicates from tile replication.
  const auto got = Sorted(sink.pairs());
  const auto want = BruteForcePairs(a, b);
  EXPECT_EQ(got.size(), want.size());
  EXPECT_EQ(got, want);
  const std::set<IdPair> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), got.size()) << "duplicates in PBSM output";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PbsmParamTest,
    ::testing::Values(
        // Single partition (everything in memory).
        PbsmCase{1000, 32, 24u << 20, false, 1},
        // Many partitions: total 2*3000*20B = 120 KB, memory 32 KB -> ~5
        // partitions.
        PbsmCase{3000, 32, 32u << 10, false, 2},
        PbsmCase{3000, 128, 32u << 10, false, 3},
        // Clustered data with few tiles: stresses replication and dedup.
        PbsmCase{2000, 8, 24u << 10, true, 4},
        // Tiny tile grid (4 tiles) with many partitions.
        PbsmCase{1500, 2, 16u << 10, false, 5}));

TEST(PBSM, GiantRectangleSpanningEverything) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 100, 100);
  auto a = UniformRects(2000, region, 1.0f, 6);
  a.push_back(RectF(-10, -10, 110, 110, 999999));  // Covers all tiles.
  const auto b = UniformRects(1000, region, 1.0f, 7);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);

  JoinOptions options;
  options.memory_bytes = 32u << 10;  // Force several partitions.
  CollectingSink sink;
  auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
}

TEST(PBSM, OverflowPartitionFallsBackToExternalSort) {
  // All data in one tile -> one partition holds everything -> overflow
  // path (external sort) must engage and still be exact.
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF spot(50, 50, 51, 51);
  const auto a = UniformRects(4000, spot, 0.1f, 8);
  const auto b = UniformRects(4000, spot, 0.1f, 9);
  std::vector<RectF> a2 = a, b2 = b;
  // Add a far-away point so the extent (and tile grid) is much larger
  // than the hot spot.
  a2.push_back(RectF(0, 0, 0.1f, 0.1f, 500000));
  b2.push_back(RectF(99, 99, 99.1f, 99.1f, 500001));
  const DatasetRef da = MakeDataset(&td, a2, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b2, "b", &keep);

  JoinOptions options;
  options.memory_bytes = 64u << 10;  // 8000 rects * 20 B > 64 KB.
  options.pbsm_tiles_per_axis = 16;
  CollectingSink sink;
  auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a2, b2));
}

TEST(PBSM, EmptySideProducesNothing) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const DatasetRef da =
      MakeDataset(&td, UniformRects(100, RectF(0, 0, 10, 10), 1.0f, 10), "a",
                  &keep);
  const DatasetRef db = MakeDataset(&td, {}, "b", &keep);
  CountingSink sink;
  auto stats = PBSMJoin(da, db, &td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_count, 0u);
}

TEST(PBSM, WritesReplicasOncePerPartition) {
  // Replication factor: every rect written to >= 1 partition, and the
  // partition write volume shows up in the stats.
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  // Rectangles much smaller than a tile (100/128), as in the paper's data:
  // replication stays mild.
  const auto a = UniformRects(5000, RectF(0, 0, 100, 100), 0.05f, 11);
  const auto b = UniformRects(5000, RectF(0, 0, 100, 100), 0.05f, 12);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  td.disk.ResetStats();
  JoinOptions options;
  options.memory_bytes = 64u << 10;
  CountingSink sink;
  auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
  ASSERT_TRUE(stats.ok());
  const uint64_t input_pages = 2 * ((5000 + 408) / 409);
  // Partition files hold >= one copy of the input.
  EXPECT_GE(stats->disk.pages_written, input_pages);
  // ... but replication should be mild for small rects (< 3x).
  EXPECT_LT(stats->disk.pages_written, 3 * input_pages + 16);
}

}  // namespace
}  // namespace sj
