#include "join/pbsm.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

struct PbsmCase {
  uint64_t n;
  uint32_t tiles;
  size_t memory;
  bool clustered;
  uint64_t seed;
};

class PbsmParamTest : public ::testing::TestWithParam<PbsmCase> {};

TEST_P(PbsmParamTest, ExactDuplicateFreeOutput) {
  const PbsmCase c = GetParam();
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 500, 500);
  const auto a = c.clustered
                     ? ClusteredRects(c.n, region, 5, 8.0f, 2.0f, c.seed)
                     : UniformRects(c.n, region, 2.0f, c.seed);
  const auto b = c.clustered
                     ? ClusteredRects(c.n, region, 5, 8.0f, 2.0f, c.seed + 1)
                     : UniformRects(c.n, region, 2.0f, c.seed + 1);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);

  JoinOptions options;
  // These cases ablate the *fixed* tile grid; the adaptive planner has
  // its own suite below and in partition_plan_test.cc.
  options.adaptive_partitioning = false;
  options.pbsm_tiles_per_axis = c.tiles;
  options.memory_bytes = c.memory;
  CollectingSink sink;
  auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Output must equal brute force exactly — this asserts both no missing
  // pairs and no duplicates from tile replication.
  const auto got = Sorted(sink.pairs());
  const auto want = BruteForcePairs(a, b);
  EXPECT_EQ(got.size(), want.size());
  EXPECT_EQ(got, want);
  const std::set<IdPair> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), got.size()) << "duplicates in PBSM output";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PbsmParamTest,
    ::testing::Values(
        // Single partition (everything in memory).
        PbsmCase{1000, 32, 24u << 20, false, 1},
        // Many partitions: total 2*3000*20B = 120 KB, memory 32 KB -> ~5
        // partitions.
        PbsmCase{3000, 32, 32u << 10, false, 2},
        PbsmCase{3000, 128, 32u << 10, false, 3},
        // Clustered data with few tiles: stresses replication and dedup.
        PbsmCase{2000, 8, 24u << 10, true, 4},
        // Tiny tile grid (4 tiles) with many partitions.
        PbsmCase{1500, 2, 16u << 10, false, 5}));

TEST(PBSM, GiantRectangleSpanningEverything) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 100, 100);
  auto a = UniformRects(2000, region, 1.0f, 6);
  a.push_back(RectF(-10, -10, 110, 110, 999999));  // Covers all tiles.
  const auto b = UniformRects(1000, region, 1.0f, 7);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);

  JoinOptions options;
  options.adaptive_partitioning = false;  // The span>=p shortcut is
                                          // round-robin-specific.
  options.memory_bytes = 32u << 10;  // Force several partitions.
  CollectingSink sink;
  auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
}

TEST(PBSM, OverflowPartitionFallsBackToExternalSort) {
  // All data in one tile -> one partition holds everything -> overflow
  // path (external sort) must engage and still be exact.
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF spot(50, 50, 51, 51);
  const auto a = UniformRects(4000, spot, 0.1f, 8);
  const auto b = UniformRects(4000, spot, 0.1f, 9);
  std::vector<RectF> a2 = a, b2 = b;
  // Add a far-away point so the extent (and tile grid) is much larger
  // than the hot spot.
  a2.push_back(RectF(0, 0, 0.1f, 0.1f, 500000));
  b2.push_back(RectF(99, 99, 99.1f, 99.1f, 500001));
  const DatasetRef da = MakeDataset(&td, a2, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b2, "b", &keep);

  JoinOptions options;
  options.adaptive_partitioning = false;  // The fixed 16^2 grid under test.
  options.memory_bytes = 64u << 10;  // 8000 rects * 20 B > 64 KB.
  options.pbsm_tiles_per_axis = 16;
  CollectingSink sink;
  auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a2, b2));
}

// The direct regression test for the overflow fallback branch: a tiny
// memory budget plus data no tile grid can separate (every rectangle
// overlaps one common point, so splitting cannot spread them) *must*
// engage the external-sort path — asserted via partitions_overflowed —
// and still produce exactly the brute-force result. Covers adaptive and
// fixed partitioning at 1 and 8 threads.
TEST(PBSM, OverflowFallbackEngagesAndMatchesBruteForce) {
  const RectF region(0, 0, 100, 100);
  Random rng(77);
  std::vector<RectF> a, b;
  for (uint64_t i = 0; i < 3000; ++i) {
    // All rectangles contain the point (50, 50): unsplittable hot mass.
    const float u = static_cast<float>(rng.UniformDouble(0.01, 0.5));
    const float v = static_cast<float>(rng.UniformDouble(0.01, 0.5));
    a.push_back(RectF(50 - u, 50 - v, 50 + v, 50 + u,
                      static_cast<ObjectId>(i)));
    const float w = static_cast<float>(rng.UniformDouble(0.01, 0.5));
    const float z = static_cast<float>(rng.UniformDouble(0.01, 0.5));
    b.push_back(RectF(50 - w, 50 - z, 50 + z, 50 + w,
                      static_cast<ObjectId>(i)));
  }
  // Far-away points so the extent (and grid) is much larger than the hot
  // spot.
  a.push_back(RectF(0, 0, 0.1f, 0.1f, 500000));
  b.push_back(RectF(99, 99, 99.1f, 99.1f, 500001));
  const auto expected = BruteForcePairs(a, b);

  for (const bool adaptive : {true, false}) {
    for (const uint32_t threads : {1u, 8u}) {
      TestDisk td;
      std::vector<std::unique_ptr<Pager>> keep;
      const DatasetRef da = MakeDataset(&td, a, "a", &keep);
      const DatasetRef db = MakeDataset(&td, b, "b", &keep);
      JoinOptions options;
      options.adaptive_partitioning = adaptive;
      options.memory_bytes = 32u << 10;  // 6000 rects * 20 B >> 32 KB.
      options.num_threads = threads;
      CollectingSink sink;
      auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_GE(stats->partitions_overflowed, 1u)
          << "overflow fallback did not engage ("
          << (adaptive ? "adaptive" : "fixed") << ", t" << threads << ")";
      EXPECT_GT(stats->max_partition_bytes, options.memory_bytes);
      EXPECT_EQ(Sorted(sink.pairs()), expected)
          << (adaptive ? "adaptive" : "fixed") << " t" << threads;
    }
  }
}

TEST(PBSM, AdaptiveAndFixedProduceIdenticalOutput) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 500, 500);
  const auto a = ClusteredRects(3000, region, 5, 8.0f, 2.0f, 31);
  const auto b = ZipfClusteredRects(2500, region, 6, 1.2, 10.0f, 2.0f, 32);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  const auto expected = BruteForcePairs(a, b);

  JoinOptions options;
  options.memory_bytes = 48u << 10;
  options.adaptive_partitioning = true;
  CollectingSink adaptive_sink;
  auto adaptive_stats = PBSMJoin(da, db, &td.disk, options, &adaptive_sink);
  ASSERT_TRUE(adaptive_stats.ok());
  EXPECT_TRUE(adaptive_stats->pbsm_adaptive);
  EXPECT_EQ(Sorted(adaptive_sink.pairs()), expected);

  options.adaptive_partitioning = false;
  CollectingSink fixed_sink;
  auto fixed_stats = PBSMJoin(da, db, &td.disk, options, &fixed_sink);
  ASSERT_TRUE(fixed_stats.ok());
  EXPECT_FALSE(fixed_stats->pbsm_adaptive);
  EXPECT_EQ(fixed_stats->pbsm_leaf_tiles,
            fixed_stats->pbsm_tiles_x * fixed_stats->pbsm_tiles_y);
  EXPECT_EQ(Sorted(fixed_sink.pairs()), expected);
}

TEST(PBSM, AttachedHistogramsSpareTheBuildPass) {
  // With histograms attached the adaptive path must not re-scan the
  // inputs for densities: its pages_read drop by at least the sampled
  // histogram pass.
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 300, 300);
  const auto a = UniformRects(60000, region, 1.0f, 41);
  const auto b = UniformRects(60000, region, 1.0f, 42);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  GridHistogram hist_a(region, 64, 64), hist_b(region, 64, 64);
  for (const RectF& r : a) hist_a.Add(r);
  for (const RectF& r : b) hist_b.Add(r);

  JoinOptions options;
  options.memory_bytes = 256u << 10;
  CountingSink without_sink, with_sink;
  td.disk.ResetStats();
  auto without = PBSMJoin(da, db, &td.disk, options, &without_sink);
  ASSERT_TRUE(without.ok());
  auto with = PBSMJoin(da, db, &td.disk, options, &with_sink, &hist_a,
                       &hist_b);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(without_sink.count(), with_sink.count());
  EXPECT_LT(with->disk.pages_read, without->disk.pages_read);
}

TEST(PBSM, EmptySideProducesNothing) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const DatasetRef da =
      MakeDataset(&td, UniformRects(100, RectF(0, 0, 10, 10), 1.0f, 10), "a",
                  &keep);
  const DatasetRef db = MakeDataset(&td, {}, "b", &keep);
  CountingSink sink;
  auto stats = PBSMJoin(da, db, &td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_count, 0u);
}

TEST(PBSM, WritesReplicasOncePerPartition) {
  // Replication factor: every rect written to >= 1 partition, and the
  // partition write volume shows up in the stats.
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  // Rectangles much smaller than a tile (100/128), as in the paper's data:
  // replication stays mild.
  const auto a = UniformRects(5000, RectF(0, 0, 100, 100), 0.05f, 11);
  const auto b = UniformRects(5000, RectF(0, 0, 100, 100), 0.05f, 12);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  td.disk.ResetStats();
  JoinOptions options;
  options.adaptive_partitioning = false;  // Fixed-grid replication story.
  options.memory_bytes = 64u << 10;
  CountingSink sink;
  auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
  ASSERT_TRUE(stats.ok());
  const uint64_t input_pages = 2 * ((5000 + 408) / 409);
  // Partition files hold >= one copy of the input.
  EXPECT_GE(stats->disk.pages_written, input_pages);
  // ... but replication should be mild for small rects (< 3x).
  EXPECT_LT(stats->disk.pages_written, 3 * input_pages + 16);
}

}  // namespace
}  // namespace sj
