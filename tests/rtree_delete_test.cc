#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/synthetic.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::MakeDataset;
using testing_util::TestDisk;

class RTreeDeleteTest : public ::testing::Test {
 protected:
  RTree BuildDynamic(const std::vector<RectF>& rects, uint32_t fanout,
                     uint32_t min_entries = 0) {
    pager_ = td_.NewPager("tree");
    RTreeParams params;
    params.max_entries = fanout;
    params.min_entries = min_entries;
    auto tree = RTree::CreateEmpty(pager_.get(), params);
    SJ_CHECK(tree.ok());
    for (const RectF& r : rects) SJ_CHECK_OK(tree->Insert(r));
    return std::move(tree).value();
  }

  TestDisk td_;
  std::unique_ptr<Pager> pager_;
};

TEST_F(RTreeDeleteTest, DeleteMissingReturnsNotFound) {
  const auto rects = UniformRects(100, RectF(0, 0, 50, 50), 1.0f, 1);
  RTree tree = BuildDynamic(rects, 8);
  RectF ghost = rects[0];
  ghost.id = 999999;  // Same box, wrong id.
  EXPECT_EQ(tree.Delete(ghost).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete(RectF(1000, 1000, 1001, 1001, 5)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tree.meta().entry_count, 100u);
}

TEST_F(RTreeDeleteTest, DeleteHalfThenQueriesMatchBruteForce) {
  const auto rects = UniformRects(2000, RectF(0, 0, 200, 200), 2.0f, 2);
  RTree tree = BuildDynamic(rects, 16);
  // Delete every other rectangle.
  for (size_t i = 0; i < rects.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(rects[i]).ok()) << "at " << i;
    // Validate invariants periodically (full validation is O(n)).
    if (i % 400 == 0) {
      ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
    }
  }
  EXPECT_EQ(tree.meta().entry_count, 1000u);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();

  const RectF window(30, 30, 90, 75);
  std::vector<RectF> got;
  ASSERT_TRUE(tree.WindowQuery(window, &got).ok());
  size_t want = 0;
  for (size_t i = 1; i < rects.size(); i += 2) {
    if (rects[i].Intersects(window)) want++;
  }
  EXPECT_EQ(got.size(), want);
}

TEST_F(RTreeDeleteTest, DeleteEverythingCollapsesTree) {
  const auto rects = UniformRects(1500, RectF(0, 0, 100, 100), 1.0f, 3);
  RTree tree = BuildDynamic(rects, 8);
  EXPECT_GT(tree.height(), 1u);
  for (const RectF& r : rects) {
    ASSERT_TRUE(tree.Delete(r).ok());
  }
  EXPECT_EQ(tree.meta().entry_count, 0u);
  EXPECT_EQ(tree.height(), 1u);  // Collapsed back to a root leaf.
  EXPECT_FALSE(tree.bounding_box().Valid());
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  // And the tree is reusable afterwards.
  ASSERT_TRUE(tree.Insert(RectF(1, 1, 2, 2, 9)).ok());
  std::vector<RectF> out;
  ASSERT_TRUE(tree.WindowQuery(RectF(0, 0, 3, 3), &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(RTreeDeleteTest, UnderflowReinsertsOrphans) {
  // Small min_entries forces condensation paths to run.
  const auto rects = UniformRects(600, RectF(0, 0, 60, 60), 1.5f, 4);
  RTree tree = BuildDynamic(rects, 8, /*min_entries=*/4);
  // Delete a spatially clustered subset to underflow specific leaves.
  std::vector<RectF> cluster;
  for (const RectF& r : rects) {
    if (r.xlo < 20 && r.ylo < 20) cluster.push_back(r);
  }
  ASSERT_GT(cluster.size(), 10u);
  for (const RectF& r : cluster) {
    ASSERT_TRUE(tree.Delete(r).ok());
  }
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_EQ(tree.meta().entry_count, rects.size() - cluster.size());
  // No deleted rect is still findable.
  std::vector<RectF> out;
  ASSERT_TRUE(tree.WindowQuery(RectF(0, 0, 20, 20), &out).ok());
  for (const RectF& r : out) {
    EXPECT_FALSE(std::find(cluster.begin(), cluster.end(), r) != cluster.end());
  }
}

TEST_F(RTreeDeleteTest, InterleavedInsertDeleteChurn) {
  // The update-churn scenario §7 warns about: the tree stays valid and
  // queries stay exact through mixed workloads.
  RTree tree = BuildDynamic({}, 12, 3);
  Random rng(77);
  std::vector<RectF> live;
  ObjectId next_id = 0;
  for (int round = 0; round < 4000; ++round) {
    if (live.empty() || rng.OneIn(0.6)) {
      const float x = static_cast<float>(rng.UniformDouble(0, 100));
      const float y = static_cast<float>(rng.UniformDouble(0, 100));
      const RectF r(x, y, x + 1, y + 1, next_id++);
      ASSERT_TRUE(tree.Insert(r).ok());
      live.push_back(r);
    } else {
      const size_t victim = rng.Uniform(live.size());
      ASSERT_TRUE(tree.Delete(live[victim]).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_EQ(tree.meta().entry_count, live.size());
  std::vector<RectF> all;
  ASSERT_TRUE(tree.CollectAll(&all).ok());
  auto key = [](const RectF& r) { return r.id; };
  std::vector<ObjectId> got, want;
  for (const RectF& r : all) got.push_back(key(r));
  for (const RectF& r : live) want.push_back(key(r));
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST_F(RTreeDeleteTest, BulkLoadedTreeSupportsDeletes) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto rects = UniformRects(3000, RectF(0, 0, 100, 100), 1.0f, 5);
  auto tree_pager = td.NewPager("tree");
  auto scratch = td.NewPager("scratch");
  const DatasetRef ref = MakeDataset(&td, rects, "d", &keep);
  RTreeParams params;
  params.max_entries = 32;
  auto tree = RTree::BulkLoadHilbert(tree_pager.get(), ref.range,
                                     scratch.get(), params, 1 << 22);
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree->Delete(rects[i]).ok()) << i;
  }
  EXPECT_EQ(tree->meta().entry_count, 2500u);
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
}

}  // namespace
}  // namespace sj
