#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "join/sssj.h"
#include "test_util.h"
#include "util/random.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

/// Adversarial input for a plane sweep: tall, thin rectangles spanning the
/// whole y-extent stay active for the entire sweep, so the interval
/// structures hold *all* of them at once.
std::vector<RectF> TallColumns(uint64_t n, float width, uint64_t seed,
                               ObjectId base = 0) {
  Random rng(seed);
  std::vector<RectF> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const float x = static_cast<float>(rng.UniformDouble(0, 1000));
    out.push_back(
        RectF(x, 0, x + width, 1000, base + static_cast<ObjectId>(i)));
  }
  return out;
}

TEST(SSSJStrip, MatchesPlainSSSJOnBenignData) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 300, 300);
  const auto a = UniformRects(2000, region, 2.0f, 1);
  const auto b = UniformRects(2000, region, 2.0f, 2);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  CollectingSink sink;
  auto stats = SSSJStripJoin(da, db, /*strips=*/8, &td.disk, JoinOptions(),
                             &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
  EXPECT_EQ(stats->partitions_total, 8u);
}

TEST(SSSJStrip, HandlesAdversarialDataThePlainSweepCannot) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = TallColumns(6000, 0.05f, 3);
  const auto b = TallColumns(6000, 0.05f, 4);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);

  JoinOptions tiny;
  tiny.memory_bytes = 64u << 10;  // 12000 always-active rects = 240 KB.

  // The partitioned variant stays within budget and is exact.
  CollectingSink sink;
  auto stats = SSSJStripJoin(da, db, /*strips=*/16, &td.disk, tiny, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
  EXPECT_LE(stats->max_sweep_bytes, tiny.memory_bytes);
}

TEST(SSSJStripDeathTest, StrictArbiterAbortsOnUngovernedSweepGrowth) {
  // The always-active columns defeat the sweep grant's square-root
  // estimate; a *strict* arbiter turns that ungoverned growth into an
  // abort (the old hard SJ_CHECK, now opt-in via
  // JoinOptions::strict_memory_accounting).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TestDisk td;
        std::vector<std::unique_ptr<Pager>> keep;
        const auto a = TallColumns(6000, 0.05f, 3);
        const auto b = TallColumns(6000, 0.05f, 4);
        const DatasetRef da = MakeDataset(&td, a, "a", &keep);
        const DatasetRef db = MakeDataset(&td, b, "b", &keep);
        JoinOptions tiny;
        tiny.memory_bytes = 64u << 10;
        tiny.strict_memory_accounting = true;
        CountingSink sink;
        SSSJJoin(da, db, &td.disk, tiny, &sink).status();
      },
      "ungoverned allocation");
}

TEST(SSSJStrip, PlainSweepRecordsOvershootInsteadOfAborting) {
  // Same adversarial input without strict accounting: the join stays
  // exact and the overshoot surfaces in the memory high-water marks
  // (usage above the sweep grant) rather than killing the process.
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = TallColumns(6000, 0.05f, 3);
  const auto b = TallColumns(6000, 0.05f, 4);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  JoinOptions tiny;
  tiny.memory_bytes = 64u << 10;
  CollectingSink sink;
  auto stats = SSSJJoin(da, db, &td.disk, tiny, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
  EXPECT_GT(stats->max_sweep_bytes, tiny.memory_bytes);
  bool recorded = false;
  for (const MemoryComponentStats& c : stats->memory_components) {
    if (c.component == grants::kSweep) {
      EXPECT_GE(c.used_high_water, stats->max_sweep_bytes);
      recorded = true;
    }
  }
  EXPECT_TRUE(recorded) << "sweep component missing from memory stats";
}

TEST(SSSJStrip, WideRectanglesReplicateButReportOnce) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  // Rows spanning all strips crossed with columns: every pair intersects.
  std::vector<RectF> rows, cols;
  for (ObjectId i = 0; i < 40; ++i) {
    rows.push_back(RectF(0, static_cast<float>(i * 10),
                         1000, static_cast<float>(i * 10 + 5), i));
    cols.push_back(RectF(static_cast<float>(i * 25), 0,
                         static_cast<float>(i * 25 + 5), 1000, i));
  }
  const DatasetRef da = MakeDataset(&td, rows, "rows", &keep);
  const DatasetRef db = MakeDataset(&td, cols, "cols", &keep);
  CollectingSink sink;
  auto stats = SSSJStripJoin(da, db, 16, &td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(sink.pairs().size(), 40u * 40u);
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(rows, cols));
}

TEST(SSSJStrip, SingleStripEqualsPlain) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = UniformRects(800, RectF(0, 0, 50, 50), 1.0f, 5);
  const auto b = UniformRects(800, RectF(0, 0, 50, 50), 1.0f, 6);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  CollectingSink strip_sink, plain_sink;
  ASSERT_TRUE(
      SSSJStripJoin(da, db, 1, &td.disk, JoinOptions(), &strip_sink).ok());
  ASSERT_TRUE(SSSJJoin(da, db, &td.disk, JoinOptions(), &plain_sink).ok());
  EXPECT_EQ(Sorted(strip_sink.pairs()), Sorted(plain_sink.pairs()));
}

}  // namespace
}  // namespace sj
