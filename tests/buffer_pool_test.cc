#include "io/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "io/pager.h"
#include "util/logging.h"

namespace sj {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest()
      : disk_(MachineModel::Machine3()),
        pager_(std::make_unique<MemoryBackend>(), &disk_, "p") {
    // Ten distinct pages.
    uint8_t page[kPageSize];
    for (PageId i = 0; i < 10; ++i) {
      std::memset(page, static_cast<int>(i + 1), kPageSize);
      SJ_CHECK_OK(pager_.WritePage(i, page));
    }
    disk_.ResetStats();
  }

  uint8_t FirstByte(BufferPool* pool, PageId p) {
    uint8_t buf[kPageSize];
    SJ_CHECK_OK(pool->Get(&pager_, p, buf));
    return buf[0];
  }

  DiskModel disk_;
  Pager pager_;
};

TEST_F(BufferPoolTest, HitAvoidsDiskRead) {
  BufferPool pool(4);
  EXPECT_EQ(FirstByte(&pool, 3), 4);
  EXPECT_EQ(disk_.stats().pages_read, 1u);
  EXPECT_EQ(FirstByte(&pool, 3), 4);
  EXPECT_EQ(disk_.stats().pages_read, 1u);  // Served from cache.
  EXPECT_EQ(pool.stats().requests, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, EvictsTrialQueueFifo) {
  // 2Q replacement: first-touch pages live in the A1in trial queue and
  // leave it FIFO — a re-reference *inside* the trial queue does not save
  // a page (only the ghost/Am path below proves reuse). This is exactly
  // where 2Q diverges from the old per-query LRU, which would have kept
  // page 0 and evicted page 1 here.
  BufferPool pool(2);
  FirstByte(&pool, 0);
  FirstByte(&pool, 1);
  FirstByte(&pool, 0);  // A1in hit: stays a trial page in FIFO position.
  FirstByte(&pool, 2);  // Evicts the trial front: page 0.
  disk_.ResetStats();
  FirstByte(&pool, 1);  // Still cached.
  EXPECT_EQ(disk_.stats().pages_read, 0u);
  FirstByte(&pool, 0);  // Was evicted: re-read (and ghost-promoted).
  EXPECT_EQ(disk_.stats().pages_read, 1u);
}

TEST_F(BufferPoolTest, GhostPromotedHotPageSurvivesScan) {
  // A page re-read after leaving the trial queue (an A1out ghost hit) is
  // promoted to the hot Am list, which a sequential scan through A1in
  // cannot flush — the scan-resistance a process-wide shared pool exists
  // for.
  BufferPool pool(4);
  for (PageId p = 0; p <= 4; ++p) FirstByte(&pool, p);  // 0 ghosted out.
  FirstByte(&pool, 0);  // Ghost hit: promoted to Am.
  for (PageId p = 5; p < 10; ++p) FirstByte(&pool, p);  // Scan churns A1in.
  disk_.ResetStats();
  EXPECT_EQ(FirstByte(&pool, 0), 1);  // Hot page outlived the whole scan.
  EXPECT_EQ(disk_.stats().pages_read, 0u);
  EXPECT_LE(pool.cached_pages(), 4u);
}

TEST_F(BufferPoolTest, PinnedFrameSurvivesEvictionPressure) {
  BufferPool pool(2);
  Result<BufferPool::PageRef> ref = pool.Pin(&pager_, 0);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.value().data()[0], 1);
  // Churn far past capacity: the pinned frame must keep its bytes.
  for (PageId p = 1; p < 10; ++p) FirstByte(&pool, p);
  EXPECT_EQ(ref.value().data()[0], 1);
  disk_.ResetStats();
  EXPECT_EQ(FirstByte(&pool, 0), 1);  // Still resident: no disk read.
  EXPECT_EQ(disk_.stats().pages_read, 0u);
  ref.value().Reset();
  EXPECT_FALSE(ref.value());
  // Unpinned now: eviction pressure may finally drop it.
  for (PageId p = 1; p < 10; ++p) FirstByte(&pool, p);
  EXPECT_LE(pool.cached_pages(), 2u);
}

TEST_F(BufferPoolTest, PerClientAttribution) {
  BufferPool pool(4);
  const uint32_t c1 = pool.RegisterClient("query.1");
  const uint32_t c2 = pool.RegisterClient("query.2");
  uint8_t buf[kPageSize];
  SJ_CHECK_OK(pool.Get(&pager_, 0, buf, c1));  // Miss charged to c1.
  SJ_CHECK_OK(pool.Get(&pager_, 0, buf, c2));  // Hit credited to c2.
  SJ_CHECK_OK(pool.Get(&pager_, 1, buf, c2));  // Miss charged to c2.
  SJ_CHECK_OK(pool.Get(&pager_, 2, buf));      // Unattributed client 0.
  EXPECT_EQ(pool.client_stats(c1).misses, 1u);
  EXPECT_EQ(pool.client_stats(c1).hits, 0u);
  EXPECT_EQ(pool.client_stats(c2).hits, 1u);
  EXPECT_EQ(pool.client_stats(c2).misses, 1u);
  EXPECT_EQ(pool.client_stats(0).misses, 1u);
  // Aggregate equals the sum over clients.
  EXPECT_EQ(pool.stats().requests, 4u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 3u);
}

TEST_F(BufferPoolTest, ConcurrentGetAndPinStress) {
  // Many threads hammer a pool far smaller than the page set, mixing
  // copying Gets and pinned refs. Every byte must come back right and the
  // aggregate counters must balance. (Run under -DSJ_TSAN=ON in the
  // concurrency CI tier.)
  BufferPool pool(3);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const uint32_t client =
          pool.RegisterClient("stress." + std::to_string(t));
      uint8_t buf[kPageSize];
      for (int i = 0; i < kIters; ++i) {
        const PageId p = static_cast<PageId>((t * 7 + i) % 10);
        const uint8_t want = static_cast<uint8_t>(p + 1);
        if (i % 3 == 0) {
          Result<BufferPool::PageRef> ref = pool.Pin(&pager_, p, client);
          if (!ref.ok() || ref.value().data()[0] != want) ++errors;
        } else {
          if (!pool.Get(&pager_, p, buf, client).ok() || buf[0] != want) {
            ++errors;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  const BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.requests, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.requests, s.hits + s.misses);
  // With no pins outstanding the pool settles back within capacity.
  EXPECT_LE(pool.cached_pages(), 3u);
  // Per-client counts add up to the aggregate.
  uint64_t sum = 0;
  for (uint32_t c = 0; c <= static_cast<uint32_t>(kThreads); ++c) {
    sum += pool.client_stats(c).requests;
  }
  EXPECT_EQ(sum, s.requests);
}

TEST_F(BufferPoolTest, CapacityIsRespected) {
  BufferPool pool(3);
  for (PageId p = 0; p < 10; ++p) FirstByte(&pool, p);
  EXPECT_LE(pool.cached_pages(), 3u);
  EXPECT_EQ(pool.stats().misses, 10u);
}

TEST_F(BufferPoolTest, DistinguishesPagers) {
  Pager other(std::make_unique<MemoryBackend>(), &disk_, "q");
  uint8_t page[kPageSize];
  std::memset(page, 0x77, kPageSize);
  SJ_CHECK_OK(other.WritePage(0, page));

  BufferPool pool(4);
  EXPECT_EQ(FirstByte(&pool, 0), 1);  // pager_ page 0.
  uint8_t buf[kPageSize];
  SJ_CHECK_OK(pool.Get(&other, 0, buf));
  EXPECT_EQ(buf[0], 0x77);  // Same page id, different device.
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST_F(BufferPoolTest, ClearDropsFramesKeepsStats) {
  BufferPool pool(4);
  FirstByte(&pool, 0);
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  EXPECT_EQ(pool.stats().misses, 1u);
  FirstByte(&pool, 0);
  EXPECT_EQ(pool.stats().misses, 2u);  // Re-read after clear.
}

TEST(BufferPool, PaperCapacityIs22MB) {
  EXPECT_EQ(BufferPool::kPaperCapacityPages * kPageSize, 22u << 20);
}

TEST_F(BufferPoolTest, CapacityOneEvictsOnEveryAlternation) {
  // The degenerate pool: one frame. Alternating pages evicts every time;
  // repeating a page hits.
  BufferPool pool(1);
  EXPECT_EQ(FirstByte(&pool, 0), 1);
  EXPECT_EQ(FirstByte(&pool, 1), 2);  // Evicts 0.
  EXPECT_EQ(FirstByte(&pool, 0), 1);  // Evicts 1, re-reads 0.
  EXPECT_EQ(pool.cached_pages(), 1u);
  EXPECT_EQ(pool.stats().misses, 3u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(FirstByte(&pool, 0), 1);  // Finally a hit.
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.cached_pages(), 1u);
}

TEST_F(BufferPoolTest, ReGetAfterClearReturnsCorrectDataAndCachesAgain) {
  BufferPool pool(4);
  EXPECT_EQ(FirstByte(&pool, 2), 3);
  EXPECT_EQ(FirstByte(&pool, 2), 3);
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  // The re-Get after Clear() must re-read correct data and re-populate
  // the cache (a subsequent Get hits again).
  disk_.ResetStats();
  EXPECT_EQ(FirstByte(&pool, 2), 3);
  EXPECT_EQ(disk_.stats().pages_read, 1u);
  EXPECT_EQ(FirstByte(&pool, 2), 3);
  EXPECT_EQ(disk_.stats().pages_read, 1u);
  EXPECT_EQ(pool.cached_pages(), 1u);
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST_F(BufferPoolTest, FrameKeysDistinguishManyPagersWithEqualPageIds) {
  // Three pagers, same page ids, distinct contents: the (device, page)
  // frame key must keep all of them apart, including under eviction
  // pressure.
  Pager q(std::make_unique<MemoryBackend>(), &disk_, "q");
  Pager s(std::make_unique<MemoryBackend>(), &disk_, "s");
  uint8_t page[kPageSize];
  for (PageId i = 0; i < 3; ++i) {
    std::memset(page, 0x40 + static_cast<int>(i), kPageSize);
    SJ_CHECK_OK(q.WritePage(i, page));
    std::memset(page, 0x60 + static_cast<int>(i), kPageSize);
    SJ_CHECK_OK(s.WritePage(i, page));
  }

  BufferPool pool(9);
  uint8_t buf[kPageSize];
  for (PageId i = 0; i < 3; ++i) {
    EXPECT_EQ(FirstByte(&pool, i), 1 + static_cast<int>(i));
    SJ_CHECK_OK(pool.Get(&q, i, buf));
    EXPECT_EQ(buf[0], 0x40 + static_cast<int>(i));
    SJ_CHECK_OK(pool.Get(&s, i, buf));
    EXPECT_EQ(buf[0], 0x60 + static_cast<int>(i));
  }
  EXPECT_EQ(pool.cached_pages(), 9u);
  EXPECT_EQ(pool.stats().misses, 9u);
  // All nine frames are distinct: re-reading each hits.
  for (PageId i = 0; i < 3; ++i) {
    EXPECT_EQ(FirstByte(&pool, i), 1 + static_cast<int>(i));
    SJ_CHECK_OK(pool.Get(&q, i, buf));
    SJ_CHECK_OK(pool.Get(&s, i, buf));
  }
  EXPECT_EQ(pool.stats().hits, 9u);
  // Under a smaller pool the same mix evicts across pagers without ever
  // serving the wrong device's bytes.
  BufferPool tight(2);
  for (int round = 0; round < 3; ++round) {
    for (PageId i = 0; i < 3; ++i) {
      SJ_CHECK_OK(tight.Get(&q, i, buf));
      EXPECT_EQ(buf[0], 0x40 + static_cast<int>(i));
      SJ_CHECK_OK(tight.Get(&s, i, buf));
      EXPECT_EQ(buf[0], 0x60 + static_cast<int>(i));
      EXPECT_LE(tight.cached_pages(), 2u);
    }
  }
}

TEST_F(BufferPoolTest, SetCapacityShrinksByEvictingLru) {
  // The grant-backed resize: shrinking evicts LRU frames down to the new
  // capacity, growing just raises the ceiling; cached data stays valid
  // throughout.
  BufferPool pool(8);
  for (PageId i = 0; i < 6; ++i) FirstByte(&pool, i);
  EXPECT_EQ(pool.cached_pages(), 6u);

  pool.SetCapacity(3);
  EXPECT_EQ(pool.capacity_pages(), 3u);
  EXPECT_EQ(pool.cached_pages(), 3u);
  // The survivors are the most recently used pages (3, 4, 5) and still
  // serve hits with the right contents.
  const uint64_t hits_before = pool.stats().hits;
  for (PageId i = 3; i < 6; ++i) {
    EXPECT_EQ(FirstByte(&pool, i), 1 + static_cast<int>(i));
  }
  EXPECT_EQ(pool.stats().hits, hits_before + 3);
  // Evicted pages miss and re-enter within the new capacity.
  EXPECT_EQ(FirstByte(&pool, 0), 1);
  EXPECT_EQ(pool.cached_pages(), 3u);

  pool.SetCapacity(5);
  EXPECT_EQ(pool.capacity_pages(), 5u);
  EXPECT_EQ(pool.cached_pages(), 3u);  // Growing never drops frames.
}

TEST_F(BufferPoolTest, StatsDeltasMatchDiskReadsExactly) {
  // Pool misses are precisely the requests that reach the disk: over any
  // access sequence, the miss delta equals the disk's pages_read delta
  // and requests always equal hits + misses.
  BufferPool pool(3);
  const PageId sequence[] = {0, 1, 2, 0, 1, 3, 0, 3, 9, 2, 2, 0};
  uint64_t last_misses = 0;
  for (PageId p : sequence) {
    disk_.ResetStats();
    FirstByte(&pool, p);
    const uint64_t miss_delta = pool.stats().misses - last_misses;
    EXPECT_EQ(miss_delta, disk_.stats().pages_read)
        << "page " << p << ": a miss must cause exactly one disk read";
    last_misses = pool.stats().misses;
    EXPECT_EQ(pool.stats().requests, pool.stats().hits + pool.stats().misses);
  }
  EXPECT_EQ(pool.stats().requests, 12u);
}

}  // namespace
}  // namespace sj
