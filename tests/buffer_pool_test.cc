#include "io/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "io/pager.h"
#include "util/logging.h"

namespace sj {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest()
      : disk_(MachineModel::Machine3()),
        pager_(std::make_unique<MemoryBackend>(), &disk_, "p") {
    // Ten distinct pages.
    uint8_t page[kPageSize];
    for (PageId i = 0; i < 10; ++i) {
      std::memset(page, static_cast<int>(i + 1), kPageSize);
      SJ_CHECK_OK(pager_.WritePage(i, page));
    }
    disk_.ResetStats();
  }

  uint8_t FirstByte(BufferPool* pool, PageId p) {
    uint8_t buf[kPageSize];
    SJ_CHECK_OK(pool->Get(&pager_, p, buf));
    return buf[0];
  }

  DiskModel disk_;
  Pager pager_;
};

TEST_F(BufferPoolTest, HitAvoidsDiskRead) {
  BufferPool pool(4);
  EXPECT_EQ(FirstByte(&pool, 3), 4);
  EXPECT_EQ(disk_.stats().pages_read, 1u);
  EXPECT_EQ(FirstByte(&pool, 3), 4);
  EXPECT_EQ(disk_.stats().pages_read, 1u);  // Served from cache.
  EXPECT_EQ(pool.stats().requests, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  FirstByte(&pool, 0);
  FirstByte(&pool, 1);
  FirstByte(&pool, 0);  // 0 is now MRU, 1 is LRU.
  FirstByte(&pool, 2);  // Evicts 1.
  disk_.ResetStats();
  FirstByte(&pool, 0);  // Still cached.
  EXPECT_EQ(disk_.stats().pages_read, 0u);
  FirstByte(&pool, 1);  // Was evicted: re-read.
  EXPECT_EQ(disk_.stats().pages_read, 1u);
}

TEST_F(BufferPoolTest, CapacityIsRespected) {
  BufferPool pool(3);
  for (PageId p = 0; p < 10; ++p) FirstByte(&pool, p);
  EXPECT_LE(pool.cached_pages(), 3u);
  EXPECT_EQ(pool.stats().misses, 10u);
}

TEST_F(BufferPoolTest, DistinguishesPagers) {
  Pager other(std::make_unique<MemoryBackend>(), &disk_, "q");
  uint8_t page[kPageSize];
  std::memset(page, 0x77, kPageSize);
  SJ_CHECK_OK(other.WritePage(0, page));

  BufferPool pool(4);
  EXPECT_EQ(FirstByte(&pool, 0), 1);  // pager_ page 0.
  uint8_t buf[kPageSize];
  SJ_CHECK_OK(pool.Get(&other, 0, buf));
  EXPECT_EQ(buf[0], 0x77);  // Same page id, different device.
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST_F(BufferPoolTest, ClearDropsFramesKeepsStats) {
  BufferPool pool(4);
  FirstByte(&pool, 0);
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  EXPECT_EQ(pool.stats().misses, 1u);
  FirstByte(&pool, 0);
  EXPECT_EQ(pool.stats().misses, 2u);  // Re-read after clear.
}

TEST(BufferPool, PaperCapacityIs22MB) {
  EXPECT_EQ(BufferPool::kPaperCapacityPages * kPageSize, 22u << 20);
}

TEST_F(BufferPoolTest, CapacityOneEvictsOnEveryAlternation) {
  // The degenerate pool: one frame. Alternating pages evicts every time;
  // repeating a page hits.
  BufferPool pool(1);
  EXPECT_EQ(FirstByte(&pool, 0), 1);
  EXPECT_EQ(FirstByte(&pool, 1), 2);  // Evicts 0.
  EXPECT_EQ(FirstByte(&pool, 0), 1);  // Evicts 1, re-reads 0.
  EXPECT_EQ(pool.cached_pages(), 1u);
  EXPECT_EQ(pool.stats().misses, 3u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(FirstByte(&pool, 0), 1);  // Finally a hit.
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.cached_pages(), 1u);
}

TEST_F(BufferPoolTest, ReGetAfterClearReturnsCorrectDataAndCachesAgain) {
  BufferPool pool(4);
  EXPECT_EQ(FirstByte(&pool, 2), 3);
  EXPECT_EQ(FirstByte(&pool, 2), 3);
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  // The re-Get after Clear() must re-read correct data and re-populate
  // the cache (a subsequent Get hits again).
  disk_.ResetStats();
  EXPECT_EQ(FirstByte(&pool, 2), 3);
  EXPECT_EQ(disk_.stats().pages_read, 1u);
  EXPECT_EQ(FirstByte(&pool, 2), 3);
  EXPECT_EQ(disk_.stats().pages_read, 1u);
  EXPECT_EQ(pool.cached_pages(), 1u);
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST_F(BufferPoolTest, FrameKeysDistinguishManyPagersWithEqualPageIds) {
  // Three pagers, same page ids, distinct contents: the (device, page)
  // frame key must keep all of them apart, including under eviction
  // pressure.
  Pager q(std::make_unique<MemoryBackend>(), &disk_, "q");
  Pager s(std::make_unique<MemoryBackend>(), &disk_, "s");
  uint8_t page[kPageSize];
  for (PageId i = 0; i < 3; ++i) {
    std::memset(page, 0x40 + static_cast<int>(i), kPageSize);
    SJ_CHECK_OK(q.WritePage(i, page));
    std::memset(page, 0x60 + static_cast<int>(i), kPageSize);
    SJ_CHECK_OK(s.WritePage(i, page));
  }

  BufferPool pool(9);
  uint8_t buf[kPageSize];
  for (PageId i = 0; i < 3; ++i) {
    EXPECT_EQ(FirstByte(&pool, i), 1 + static_cast<int>(i));
    SJ_CHECK_OK(pool.Get(&q, i, buf));
    EXPECT_EQ(buf[0], 0x40 + static_cast<int>(i));
    SJ_CHECK_OK(pool.Get(&s, i, buf));
    EXPECT_EQ(buf[0], 0x60 + static_cast<int>(i));
  }
  EXPECT_EQ(pool.cached_pages(), 9u);
  EXPECT_EQ(pool.stats().misses, 9u);
  // All nine frames are distinct: re-reading each hits.
  for (PageId i = 0; i < 3; ++i) {
    EXPECT_EQ(FirstByte(&pool, i), 1 + static_cast<int>(i));
    SJ_CHECK_OK(pool.Get(&q, i, buf));
    SJ_CHECK_OK(pool.Get(&s, i, buf));
  }
  EXPECT_EQ(pool.stats().hits, 9u);
  // Under a smaller pool the same mix evicts across pagers without ever
  // serving the wrong device's bytes.
  BufferPool tight(2);
  for (int round = 0; round < 3; ++round) {
    for (PageId i = 0; i < 3; ++i) {
      SJ_CHECK_OK(tight.Get(&q, i, buf));
      EXPECT_EQ(buf[0], 0x40 + static_cast<int>(i));
      SJ_CHECK_OK(tight.Get(&s, i, buf));
      EXPECT_EQ(buf[0], 0x60 + static_cast<int>(i));
      EXPECT_LE(tight.cached_pages(), 2u);
    }
  }
}

TEST_F(BufferPoolTest, SetCapacityShrinksByEvictingLru) {
  // The grant-backed resize: shrinking evicts LRU frames down to the new
  // capacity, growing just raises the ceiling; cached data stays valid
  // throughout.
  BufferPool pool(8);
  for (PageId i = 0; i < 6; ++i) FirstByte(&pool, i);
  EXPECT_EQ(pool.cached_pages(), 6u);

  pool.SetCapacity(3);
  EXPECT_EQ(pool.capacity_pages(), 3u);
  EXPECT_EQ(pool.cached_pages(), 3u);
  // The survivors are the most recently used pages (3, 4, 5) and still
  // serve hits with the right contents.
  const uint64_t hits_before = pool.stats().hits;
  for (PageId i = 3; i < 6; ++i) {
    EXPECT_EQ(FirstByte(&pool, i), 1 + static_cast<int>(i));
  }
  EXPECT_EQ(pool.stats().hits, hits_before + 3);
  // Evicted pages miss and re-enter within the new capacity.
  EXPECT_EQ(FirstByte(&pool, 0), 1);
  EXPECT_EQ(pool.cached_pages(), 3u);

  pool.SetCapacity(5);
  EXPECT_EQ(pool.capacity_pages(), 5u);
  EXPECT_EQ(pool.cached_pages(), 3u);  // Growing never drops frames.
}

TEST_F(BufferPoolTest, StatsDeltasMatchDiskReadsExactly) {
  // Pool misses are precisely the requests that reach the disk: over any
  // access sequence, the miss delta equals the disk's pages_read delta
  // and requests always equal hits + misses.
  BufferPool pool(3);
  const PageId sequence[] = {0, 1, 2, 0, 1, 3, 0, 3, 9, 2, 2, 0};
  uint64_t last_misses = 0;
  for (PageId p : sequence) {
    disk_.ResetStats();
    FirstByte(&pool, p);
    const uint64_t miss_delta = pool.stats().misses - last_misses;
    EXPECT_EQ(miss_delta, disk_.stats().pages_read)
        << "page " << p << ": a miss must cause exactly one disk read";
    last_misses = pool.stats().misses;
    EXPECT_EQ(pool.stats().requests, pool.stats().hits + pool.stats().misses);
  }
  EXPECT_EQ(pool.stats().requests, 12u);
}

}  // namespace
}  // namespace sj
