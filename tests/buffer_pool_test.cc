#include "io/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "io/pager.h"
#include "util/logging.h"

namespace sj {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest()
      : disk_(MachineModel::Machine3()),
        pager_(std::make_unique<MemoryBackend>(), &disk_, "p") {
    // Ten distinct pages.
    uint8_t page[kPageSize];
    for (PageId i = 0; i < 10; ++i) {
      std::memset(page, static_cast<int>(i + 1), kPageSize);
      SJ_CHECK_OK(pager_.WritePage(i, page));
    }
    disk_.ResetStats();
  }

  uint8_t FirstByte(BufferPool* pool, PageId p) {
    uint8_t buf[kPageSize];
    SJ_CHECK_OK(pool->Get(&pager_, p, buf));
    return buf[0];
  }

  DiskModel disk_;
  Pager pager_;
};

TEST_F(BufferPoolTest, HitAvoidsDiskRead) {
  BufferPool pool(4);
  EXPECT_EQ(FirstByte(&pool, 3), 4);
  EXPECT_EQ(disk_.stats().pages_read, 1u);
  EXPECT_EQ(FirstByte(&pool, 3), 4);
  EXPECT_EQ(disk_.stats().pages_read, 1u);  // Served from cache.
  EXPECT_EQ(pool.stats().requests, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  FirstByte(&pool, 0);
  FirstByte(&pool, 1);
  FirstByte(&pool, 0);  // 0 is now MRU, 1 is LRU.
  FirstByte(&pool, 2);  // Evicts 1.
  disk_.ResetStats();
  FirstByte(&pool, 0);  // Still cached.
  EXPECT_EQ(disk_.stats().pages_read, 0u);
  FirstByte(&pool, 1);  // Was evicted: re-read.
  EXPECT_EQ(disk_.stats().pages_read, 1u);
}

TEST_F(BufferPoolTest, CapacityIsRespected) {
  BufferPool pool(3);
  for (PageId p = 0; p < 10; ++p) FirstByte(&pool, p);
  EXPECT_LE(pool.cached_pages(), 3u);
  EXPECT_EQ(pool.stats().misses, 10u);
}

TEST_F(BufferPoolTest, DistinguishesPagers) {
  Pager other(std::make_unique<MemoryBackend>(), &disk_, "q");
  uint8_t page[kPageSize];
  std::memset(page, 0x77, kPageSize);
  SJ_CHECK_OK(other.WritePage(0, page));

  BufferPool pool(4);
  EXPECT_EQ(FirstByte(&pool, 0), 1);  // pager_ page 0.
  uint8_t buf[kPageSize];
  SJ_CHECK_OK(pool.Get(&other, 0, buf));
  EXPECT_EQ(buf[0], 0x77);  // Same page id, different device.
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST_F(BufferPoolTest, ClearDropsFramesKeepsStats) {
  BufferPool pool(4);
  FirstByte(&pool, 0);
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  EXPECT_EQ(pool.stats().misses, 1u);
  FirstByte(&pool, 0);
  EXPECT_EQ(pool.stats().misses, 2u);  // Re-read after clear.
}

TEST(BufferPool, PaperCapacityIs22MB) {
  EXPECT_EQ(BufferPool::kPaperCapacityPages * kPageSize, 22u << 20);
}

}  // namespace
}  // namespace sj
