#include "io/disk_model.h"

#include <gtest/gtest.h>

#include "io/machine_model.h"

namespace sj {
namespace {

TEST(MachineModel, Table1Values) {
  const MachineModel m1 = MachineModel::Machine1();
  EXPECT_DOUBLE_EQ(m1.avg_access_ms, 8.0);
  EXPECT_DOUBLE_EQ(m1.transfer_mb_per_s, 10.0);
  EXPECT_DOUBLE_EQ(m1.disk_buffer_kb, 512);
  const MachineModel m2 = MachineModel::Machine2();
  EXPECT_DOUBLE_EQ(m2.avg_access_ms, 12.5);
  EXPECT_DOUBLE_EQ(m2.transfer_mb_per_s, 33.3);
  EXPECT_DOUBLE_EQ(m2.disk_buffer_kb, 128);
  const MachineModel m3 = MachineModel::Machine3();
  EXPECT_DOUBLE_EQ(m3.avg_access_ms, 7.7);
  EXPECT_DOUBLE_EQ(m3.transfer_mb_per_s, 40.0);
  // CPU slowdowns mirror the MHz ladder: M1 slowest by far.
  EXPECT_GT(m1.cpu_slowdown, m2.cpu_slowdown);
  EXPECT_GT(m2.cpu_slowdown, m3.cpu_slowdown);
}

TEST(MachineModel, RandomToSequentialRatioNearPaperRuleOfThumb) {
  // The paper's §6.3 assumes a random read costs ~10x a sequential read;
  // that is Machine 1's disk.
  const double ratio =
      MachineModel::Machine1().RandomToSequentialReadRatio(kPageSize);
  EXPECT_GT(ratio, 9.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(DiskModel, StreamCapacityFollowsBufferSize) {
  EXPECT_EQ(DiskModel(MachineModel::Machine1()).stream_capacity(), 8u);
  EXPECT_EQ(DiskModel(MachineModel::Machine2()).stream_capacity(), 2u);
  EXPECT_EQ(DiskModel(MachineModel::Machine3()).stream_capacity(), 8u);
}

TEST(DiskModel, FirstAccessIsRandomThenSequential) {
  DiskModel disk(MachineModel::Machine1());
  const uint32_t dev = disk.RegisterDevice("f");
  disk.Read(dev, 0, 1);
  disk.Read(dev, 1, 1);
  disk.Read(dev, 2, 1);
  EXPECT_EQ(disk.stats().read_requests, 3u);
  EXPECT_EQ(disk.stats().random_read_requests, 1u);
  EXPECT_EQ(disk.stats().sequential_read_requests, 2u);
  EXPECT_EQ(disk.stats().pages_read, 3u);
}

TEST(DiskModel, ForwardSkipsHitReadAheadOtherJumpsDoNot) {
  DiskModel disk(MachineModel::Machine1());
  const uint32_t dev = disk.RegisterDevice("f");
  disk.Read(dev, 0, 1);    // Random (cold).
  disk.Read(dev, 3, 1);    // Within the 64 KB forward read-ahead: cached.
  disk.Read(dev, 1, 1);    // Backward jump: not retained -> random.
  disk.Read(dev, 1000, 1); // Far forward jump: random.
  EXPECT_EQ(disk.stats().random_read_requests, 3u);
  EXPECT_EQ(disk.stats().sequential_read_requests, 1u);
}

TEST(DiskModel, InterleavedStreamsStaySequential) {
  // The §6.2 mechanism: the drive's segmented cache keeps read-ahead state
  // for several concurrent streams, so ST's alternating tree-A/tree-B leaf
  // runs are serviced at streaming rate.
  DiskModel disk(MachineModel::Machine3());  // 8 segments.
  const uint32_t a = disk.RegisterDevice("a");
  const uint32_t b = disk.RegisterDevice("b");
  for (uint64_t i = 0; i < 50; ++i) {
    disk.Read(a, i, 1);
    disk.Read(b, i, 1);
  }
  // Only the two cold starts are random.
  EXPECT_EQ(disk.stats().random_read_requests, 2u);
  EXPECT_EQ(disk.stats().sequential_read_requests, 98u);
}

TEST(DiskModel, SmallBufferCannotTrackManyStreams) {
  // Machine 2's 128 KB buffer (2 segments) thrashes on 3 interleaved
  // streams — the paper's explanation for ST losing its advantage there.
  DiskModel disk(MachineModel::Machine2());
  const uint32_t a = disk.RegisterDevice("a");
  const uint32_t b = disk.RegisterDevice("b");
  const uint32_t c = disk.RegisterDevice("c");
  for (uint64_t i = 0; i < 50; ++i) {
    disk.Read(a, i, 1);
    disk.Read(b, i, 1);
    disk.Read(c, i, 1);
  }
  // LRU eviction destroys every stream before it is continued.
  EXPECT_EQ(disk.stats().sequential_read_requests, 0u);

  // The same pattern on Machine 3 (8 segments) is almost all sequential.
  DiskModel big(MachineModel::Machine3());
  const uint32_t a2 = big.RegisterDevice("a");
  const uint32_t b2 = big.RegisterDevice("b");
  const uint32_t c2 = big.RegisterDevice("c");
  for (uint64_t i = 0; i < 50; ++i) {
    big.Read(a2, i, 1);
    big.Read(b2, i, 1);
    big.Read(c2, i, 1);
  }
  EXPECT_EQ(big.stats().random_read_requests, 3u);
}

TEST(DiskModel, ReadAndWriteStreamsAreIndependent) {
  DiskModel disk(MachineModel::Machine1());
  const uint32_t dev = disk.RegisterDevice("f");
  disk.Write(dev, 0, 1);
  disk.Read(dev, 1, 1);   // Not a continuation of the write stream.
  EXPECT_EQ(disk.stats().random_read_requests, 1u);
  disk.Write(dev, 1, 1);  // Continues the write stream.
  EXPECT_EQ(disk.stats().sequential_write_requests, 1u);
}

TEST(DiskModel, SequentialCostIsTransferOnly) {
  DiskModel disk(MachineModel::Machine1());
  const uint32_t dev = disk.RegisterDevice("f");
  disk.Read(dev, 0, 1);
  const double t_first = disk.stats().io_seconds;
  disk.Read(dev, 1, 1);
  const double t_second = disk.stats().io_seconds - t_first;
  // 8 KB at 10 MB/s = 0.8192 ms.
  EXPECT_NEAR(t_second, 8192.0 / 10e6, 1e-9);
  // Random access adds the 8 ms positioning cost.
  EXPECT_NEAR(t_first, 8e-3 + 8192.0 / 10e6, 1e-9);
}

TEST(DiskModel, MultiPageRequestPaysPositioningOnce) {
  DiskModel disk(MachineModel::Machine1());
  const uint32_t dev = disk.RegisterDevice("f");
  disk.Read(dev, 10, 64);  // A 512 KB streaming block.
  EXPECT_EQ(disk.stats().read_requests, 1u);
  EXPECT_EQ(disk.stats().pages_read, 64u);
  EXPECT_NEAR(disk.stats().io_seconds, 8e-3 + 64 * 8192.0 / 10e6, 1e-9);
  // The next block continues the stream.
  disk.Read(dev, 74, 64);
  EXPECT_EQ(disk.stats().sequential_read_requests, 1u);
}

TEST(DiskModel, WritesCostWriteFactor) {
  DiskModel disk(MachineModel::Machine1());
  const uint32_t dev = disk.RegisterDevice("f");
  disk.Write(dev, 0, 1);
  disk.Write(dev, 1, 1);  // Sequential write.
  const double seq_write = disk.stats().io_seconds - (8e-3 + 1.5 * 8192.0 / 10e6);
  EXPECT_NEAR(seq_write, 1.5 * 8192.0 / 10e6, 1e-9);
}

TEST(DiskModel, PerDeviceAttribution) {
  DiskModel disk(MachineModel::Machine3());
  const uint32_t a = disk.RegisterDevice("a");
  const uint32_t b = disk.RegisterDevice("b");
  disk.Read(a, 0, 3);
  disk.Write(b, 0, 2);
  EXPECT_EQ(disk.device_stats()[a].pages_read, 3u);
  EXPECT_EQ(disk.device_stats()[a].pages_written, 0u);
  EXPECT_EQ(disk.device_stats()[b].pages_written, 2u);
  EXPECT_EQ(disk.device_stats()[b].name, "b");
}

TEST(DiskModel, ResetClearsStatsButKeepsStreams) {
  DiskModel disk(MachineModel::Machine1());
  const uint32_t dev = disk.RegisterDevice("f");
  disk.Read(dev, 0, 1);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().read_requests, 0u);
  EXPECT_EQ(disk.stats().io_seconds, 0.0);
  // The read-ahead stream survives, so page 1 reads sequentially.
  disk.Read(dev, 1, 1);
  EXPECT_EQ(disk.stats().sequential_read_requests, 1u);
}

TEST(DiskStats, DeltaSubtraction) {
  DiskModel disk(MachineModel::Machine1());
  const uint32_t dev = disk.RegisterDevice("f");
  disk.Read(dev, 0, 1);
  const DiskStats before = disk.stats();
  disk.Read(dev, 1, 1);
  disk.Write(dev, 5, 2);
  const DiskStats delta = disk.stats() - before;
  EXPECT_EQ(delta.read_requests, 1u);
  EXPECT_EQ(delta.pages_written, 2u);
  EXPECT_GT(delta.io_seconds, 0.0);
}

}  // namespace
}  // namespace sj
