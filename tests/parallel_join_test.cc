// Parallel-equals-serial determinism: PBSM, SSSJ strip joins, and the
// parallel multiway join must produce byte-identical output (same pairs,
// same order) and identical modeled I/O stats for every num_threads,
// because each parallel unit runs against a private DiskModel shard that
// is merged in unit order.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/synthetic.h"
#include "join/multiway.h"
#include "join/pbsm.h"
#include "join/sssj.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

void ExpectSameDiskStats(const DiskStats& got, const DiskStats& want,
                         uint32_t threads) {
  EXPECT_EQ(got.read_requests, want.read_requests) << "threads=" << threads;
  EXPECT_EQ(got.sequential_read_requests, want.sequential_read_requests)
      << "threads=" << threads;
  EXPECT_EQ(got.random_read_requests, want.random_read_requests)
      << "threads=" << threads;
  EXPECT_EQ(got.write_requests, want.write_requests) << "threads=" << threads;
  EXPECT_EQ(got.sequential_write_requests, want.sequential_write_requests)
      << "threads=" << threads;
  EXPECT_EQ(got.random_write_requests, want.random_write_requests)
      << "threads=" << threads;
  EXPECT_EQ(got.pages_read, want.pages_read) << "threads=" << threads;
  EXPECT_EQ(got.pages_written, want.pages_written) << "threads=" << threads;
  // Exact double equality: the shards sum the same request sequences in
  // the same order for every thread count.
  EXPECT_EQ(got.io_seconds, want.io_seconds) << "threads=" << threads;
}

struct RunResult {
  std::vector<IdPair> pairs;
  JoinStats stats;
};

template <typename JoinFn>
RunResult RunWithThreads(const std::vector<RectF>& a,
                         const std::vector<RectF>& b, uint32_t threads,
                         size_t memory_bytes, JoinFn&& join) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  JoinOptions options;
  options.memory_bytes = memory_bytes;
  options.num_threads = threads;
  CollectingSink sink;
  RunResult result;
  auto stats = join(da, db, &td.disk, options, &sink);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  result.pairs = sink.pairs();
  result.stats = *stats;
  return result;
}

TEST(ParallelJoin, PBSMDeterministicAcrossThreadCounts) {
  const RectF region(0, 0, 500, 500);
  // Memory small enough to force several partitions, so the pool has
  // real units to schedule.
  const auto a = UniformRects(4000, region, 2.0f, 21);
  const auto b = UniformRects(4000, region, 2.0f, 22);
  auto pbsm = [](const DatasetRef& da, const DatasetRef& db, DiskModel* disk,
                 const JoinOptions& options, JoinSink* sink) {
    return PBSMJoin(da, db, disk, options, sink);
  };
  const RunResult serial = RunWithThreads(a, b, 1, 48u << 10, pbsm);
  EXPECT_EQ(Sorted(serial.pairs), BruteForcePairs(a, b));
  EXPECT_GT(serial.stats.partitions_total, 1u);

  for (const uint32_t threads : {2u, 8u}) {
    const RunResult parallel = RunWithThreads(a, b, threads, 48u << 10, pbsm);
    EXPECT_EQ(parallel.pairs, serial.pairs) << "threads=" << threads;
    EXPECT_EQ(parallel.stats.output_count, serial.stats.output_count);
    EXPECT_EQ(parallel.stats.max_sweep_bytes, serial.stats.max_sweep_bytes);
    EXPECT_EQ(parallel.stats.partitions_total, serial.stats.partitions_total);
    EXPECT_EQ(parallel.stats.partitions_overflowed,
              serial.stats.partitions_overflowed);
    EXPECT_EQ(parallel.stats.max_partition_bytes,
              serial.stats.max_partition_bytes);
    ExpectSameDiskStats(parallel.stats.disk, serial.stats.disk, threads);
  }
}

TEST(ParallelJoin, PBSMOverflowPathDeterministic) {
  // Everything in one hot tile: the overflow (external sort) branch must
  // also be shard-deterministic.
  const RectF spot(50, 50, 51, 51);
  auto a = UniformRects(3000, spot, 0.1f, 23);
  auto b = UniformRects(3000, spot, 0.1f, 24);
  a.push_back(RectF(0, 0, 0.1f, 0.1f, 400000));
  b.push_back(RectF(99, 99, 99.1f, 99.1f, 400001));
  auto pbsm = [](const DatasetRef& da, const DatasetRef& db, DiskModel* disk,
                 const JoinOptions& options, JoinSink* sink) {
    return PBSMJoin(da, db, disk, options, sink);
  };
  const RunResult serial = RunWithThreads(a, b, 1, 48u << 10, pbsm);
  EXPECT_EQ(Sorted(serial.pairs), BruteForcePairs(a, b));
  EXPECT_GT(serial.stats.partitions_overflowed, 0u);
  for (const uint32_t threads : {2u, 8u}) {
    const RunResult parallel = RunWithThreads(a, b, threads, 48u << 10, pbsm);
    EXPECT_EQ(parallel.pairs, serial.pairs) << "threads=" << threads;
    ExpectSameDiskStats(parallel.stats.disk, serial.stats.disk, threads);
  }
}

TEST(ParallelJoin, SSSJStripDeterministicAcrossThreadCounts) {
  const RectF region(0, 0, 500, 500);
  const auto a = UniformRects(4000, region, 2.0f, 25);
  const auto b = UniformRects(4000, region, 2.0f, 26);
  auto strip_join = [](const DatasetRef& da, const DatasetRef& db,
                       DiskModel* disk, const JoinOptions& options,
                       JoinSink* sink) {
    return SSSJStripJoin(da, db, /*strips=*/8, disk, options, sink);
  };
  const RunResult serial = RunWithThreads(a, b, 1, 24u << 20, strip_join);
  EXPECT_EQ(Sorted(serial.pairs), BruteForcePairs(a, b));
  EXPECT_EQ(serial.stats.partitions_total, 8u);

  for (const uint32_t threads : {2u, 8u}) {
    const RunResult parallel =
        RunWithThreads(a, b, threads, 24u << 20, strip_join);
    EXPECT_EQ(parallel.pairs, serial.pairs) << "threads=" << threads;
    EXPECT_EQ(parallel.stats.output_count, serial.stats.output_count);
    EXPECT_EQ(parallel.stats.max_sweep_bytes, serial.stats.max_sweep_bytes);
    ExpectSameDiskStats(parallel.stats.disk, serial.stats.disk, threads);
  }
}

std::vector<std::vector<ObjectId>> SortedTuples(
    std::vector<std::vector<ObjectId>> tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

TEST(ParallelJoin, MultiwayStreamsDeterministicAndMatchesChain) {
  const RectF region(0, 0, 200, 200);
  // Three inputs with enough overlap for a nontrivial 3-way result.
  std::vector<std::vector<RectF>> inputs;
  for (uint64_t k = 0; k < 3; ++k) {
    auto rects = UniformRects(1500, region, 6.0f, 31 + k);
    std::sort(rects.begin(), rects.end(), OrderByYLo());
    inputs.push_back(std::move(rects));
  }

  auto run = [&](uint32_t threads) {
    TestDisk td;
    std::vector<std::unique_ptr<Pager>> keep;
    std::vector<DatasetRef> refs;
    RectF extent = RectF::Empty();
    for (size_t k = 0; k < inputs.size(); ++k) {
      refs.push_back(
          MakeDataset(&td, inputs[k], "in" + std::to_string(k), &keep));
      extent.ExtendTo(refs.back().extent);
    }
    JoinOptions options;
    options.num_threads = threads;
    CollectingTupleSink sink;
    auto stats =
        MultiwayJoinStreams(refs, extent, &td.disk, options, &sink);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return std::make_pair(sink.tuples(), *stats);
  };

  const auto serial = run(1);
  EXPECT_GT(serial.second.output_count, 0u);
  for (const uint32_t threads : {2u, 8u}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.first, serial.first) << "threads=" << threads;
    EXPECT_EQ(parallel.second.output_count, serial.second.output_count);
    ExpectSameDiskStats(parallel.second.disk, serial.second.disk, threads);
  }

  // The strip decomposition must agree with the serial left-deep chain.
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  std::vector<DatasetRef> refs;
  RectF extent = RectF::Empty();
  for (size_t k = 0; k < inputs.size(); ++k) {
    refs.push_back(
        MakeDataset(&td, inputs[k], "in" + std::to_string(k), &keep));
    extent.ExtendTo(refs.back().extent);
  }
  std::vector<std::unique_ptr<SortedStreamSource>> sources;
  std::vector<SortedRectSource*> source_ptrs;
  for (const DatasetRef& ref : refs) {
    sources.push_back(std::make_unique<SortedStreamSource>(ref.range));
    source_ptrs.push_back(sources.back().get());
  }
  CollectingTupleSink chain_sink;
  auto chain_stats = MultiwayJoinSources(source_ptrs, extent, &td.disk,
                                         JoinOptions(), &chain_sink);
  ASSERT_TRUE(chain_stats.ok());
  EXPECT_EQ(SortedTuples(serial.first), SortedTuples(chain_sink.tuples()));
}

}  // namespace
}  // namespace sj
