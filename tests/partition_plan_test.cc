// PartitionPlanner / PartitionMap unit and property tests, including the
// reference-point duplicate-suppression property the ISSUE demands:
// under adaptive grids with recursive tile splits, every result pair is
// emitted exactly once at every thread count.

#include "join/partition_plan.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "datagen/synthetic.h"
#include "join/pbsm.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::TestDisk;

GridHistogram HistogramOf(const std::vector<RectF>& rects,
                          const RectF& extent, uint32_t res) {
  GridHistogram hist(extent, res, res);
  for (const RectF& r : rects) hist.Add(r);
  return hist;
}

// ---------------------------------------------------------------------------
// Planner shape
// ---------------------------------------------------------------------------

TEST(PartitionPlanner, UniformDataStaysOnBaseGrid) {
  const RectF extent(0, 0, 100, 100);
  const auto a = UniformRects(4000, extent, 1.0f, 1);
  const auto b = UniformRects(4000, extent, 1.0f, 2);
  PartitionPlannerConfig config;
  config.memory_bytes = 64u << 10;
  const auto plan = PartitionPlanner::Plan(extent, HistogramOf(a, extent, 64),
                                           HistogramOf(b, extent, 64), config);
  // 8000 records * 20 B = 160 KB over ~61 KB partitions: a handful of
  // partitions, and uniform density leaves no tile above the split
  // threshold.
  EXPECT_GE(plan->partitions(), 3u);
  EXPECT_EQ(plan->split_tiles(), 0u);
  EXPECT_EQ(plan->leaf_tiles(), plan->tiles_x() * plan->tiles_y());
}

TEST(PartitionPlanner, HotTileIsSplitRecursively) {
  const RectF extent(0, 0, 100, 100);
  // Everything inside one ~2x2 hot square: the covering tile exceeds any
  // reasonable threshold and must be split repeatedly.
  const auto a = UniformRects(6000, RectF(40, 40, 42, 42), 0.2f, 3);
  const auto b = UniformRects(6000, RectF(40, 40, 42, 42), 0.2f, 4);
  PartitionPlannerConfig config;
  config.memory_bytes = 32u << 10;
  const auto plan =
      PartitionPlanner::Plan(extent, HistogramOf(a, extent, 128),
                             HistogramOf(b, extent, 128), config);
  EXPECT_GT(plan->split_tiles(), 0u);
  EXPECT_GT(plan->leaf_tiles(), plan->tiles_x() * plan->tiles_y());
  EXPECT_GT(plan->partitions(), 1u);
}

TEST(PartitionPlanner, EmptyHistogramsYieldOnePartition) {
  const RectF extent(0, 0, 100, 100);
  PartitionPlannerConfig config;
  const auto plan =
      PartitionPlanner::Plan(extent, GridHistogram(extent, 16, 16),
                             GridHistogram(extent, 16, 16), config);
  EXPECT_EQ(plan->partitions(), 1u);
  EXPECT_EQ(plan->split_tiles(), 0u);
}

TEST(PartitionPlanner, WriterBlocksScaleWithTheMemoryBudget) {
  const RectF extent(0, 0, 100, 100);
  const auto a = UniformRects(4000, extent, 1.0f, 5);
  const auto hist = HistogramOf(a, extent, 64);
  PartitionPlannerConfig small;
  small.memory_bytes = 32u << 10;
  PartitionPlannerConfig large;
  large.memory_bytes = 24u << 20;
  const auto plan_small = PartitionPlanner::Plan(extent, hist, hist, small);
  const auto plan_large = PartitionPlanner::Plan(extent, hist, hist, large);
  EXPECT_GE(plan_small->writer_block_pages(), 4u);
  EXPECT_GT(plan_large->writer_block_pages(),
            plan_small->writer_block_pages());
}

// ---------------------------------------------------------------------------
// The correctness contract: the reference-point partition of any pair is
// among the partitions either rectangle replicates into — for random
// rectangles against a plan with real recursive splits.
// ---------------------------------------------------------------------------

TEST(PartitionMap, ReferencePartitionIsAlwaysReplicatedInto) {
  const RectF extent(0, 0, 100, 100);
  const auto hot_a = UniformRects(5000, RectF(10, 10, 12, 12), 0.3f, 6);
  const auto hot_b = UniformRects(5000, RectF(10, 10, 12, 12), 0.3f, 7);
  PartitionPlannerConfig config;
  config.memory_bytes = 32u << 10;
  const auto plan =
      PartitionPlanner::Plan(extent, HistogramOf(hot_a, extent, 128),
                             HistogramOf(hot_b, extent, 128), config);
  ASSERT_GT(plan->split_tiles(), 0u);

  // Random pairs, including degenerate points, tile-boundary-aligned
  // rects and rects straddling the hot region.
  Random rng(99);
  std::vector<uint32_t> parts_a, parts_b;
  for (int trial = 0; trial < 20000; ++trial) {
    auto rect = [&](bool hot) {
      const double span = hot ? 4.0 : 100.0;
      const double ox = hot ? 9.0 : 0.0;
      const float xlo = static_cast<float>(ox + rng.UniformDouble(0, span));
      const float ylo = static_cast<float>(ox + rng.UniformDouble(0, span));
      const float w = static_cast<float>(rng.UniformDouble(0, span / 8));
      const float h = static_cast<float>(rng.UniformDouble(0, span / 8));
      return RectF(xlo, ylo, xlo + w, ylo + h, 0);
    };
    const RectF ra = rect(trial % 2 == 0);
    const RectF rb = rect(trial % 3 == 0);
    if (!ra.Intersects(rb)) continue;
    const uint32_t ref = plan->ReferencePartition(ra, rb);
    plan->PartitionsOf(ra, &parts_a);
    plan->PartitionsOf(rb, &parts_b);
    ASSERT_NE(std::find(parts_a.begin(), parts_a.end(), ref), parts_a.end())
        << "pair's reference partition missing from side a's replicas";
    ASSERT_NE(std::find(parts_b.begin(), parts_b.end(), ref), parts_b.end())
        << "pair's reference partition missing from side b's replicas";
  }
}

// ---------------------------------------------------------------------------
// The duplicate-suppression property, end to end through PBSMJoin: a
// counting sink that records per-pair multiplicities must see every
// brute-force pair exactly once — under adaptive grids with recursive
// splits and under fixed grids, at 1/2/8 threads.
// ---------------------------------------------------------------------------

class DuplicateCountingSink final : public JoinSink {
 public:
  void Emit(ObjectId a, ObjectId b) override { counts_[{a, b}]++; }
  const std::map<IdPair, uint64_t>& counts() const { return counts_; }

 private:
  std::map<IdPair, uint64_t> counts_;
};

TEST(PBSMDuplicateSuppression, EveryPairEmittedExactlyOnce) {
  const RectF region(0, 0, 200, 200);
  // A dense city on uniform background: forces recursive splits on the
  // city tiles while the background exercises plain base-grid leaves.
  const auto a = UniformWithCityRects(4000, region, 0.6, 6.0f, 1.0f, 11);
  const auto b = UniformWithCityRects(4000, region, 0.6, 6.0f, 1.2f, 12);
  const auto expected = BruteForcePairs(a, b);
  ASSERT_FALSE(expected.empty());

  for (const bool adaptive : {true, false}) {
    for (const uint32_t threads : {1u, 2u, 8u}) {
      TestDisk td;
      std::vector<std::unique_ptr<Pager>> keep;
      const DatasetRef da = MakeDataset(&td, a, "a", &keep);
      const DatasetRef db = MakeDataset(&td, b, "b", &keep);
      JoinOptions options;
      options.adaptive_partitioning = adaptive;
      options.memory_bytes = 24u << 10;  // Many partitions, real splits.
      options.num_threads = threads;
      DuplicateCountingSink sink;
      auto stats = PBSMJoin(da, db, &td.disk, options, &sink);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      if (adaptive) {
        EXPECT_GT(stats->pbsm_split_tiles, 0u)
            << "workload was meant to force recursive splits";
      }
      ASSERT_EQ(sink.counts().size(), expected.size())
          << (adaptive ? "adaptive" : "fixed") << " t" << threads;
      for (const auto& [pair, count] : sink.counts()) {
        ASSERT_EQ(count, 1u)
            << "pair (" << pair.a << ", " << pair.b << ") emitted " << count
            << " times under " << (adaptive ? "adaptive" : "fixed")
            << " partitioning with " << threads << " threads";
      }
      size_t i = 0;
      for (const auto& [pair, count] : sink.counts()) {
        ASSERT_EQ(pair, expected[i++]);
      }
    }
  }
}

}  // namespace
}  // namespace sj
