#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::MakeDataset;
using testing_util::TestDisk;

struct TreeFixture {
  TreeFixture() = default;

  Result<RTree> Build(const std::vector<RectF>& rects, RTreeParams params,
                      bool str = false) {
    tree_pager = td.NewPager("tree");
    scratch = td.NewPager("scratch");
    const DatasetRef ref = MakeDataset(&td, rects, "data", &keep);
    return str ? RTree::BulkLoadSTR(tree_pager.get(), ref.range,
                                    scratch.get(), params, 1 << 22)
               : RTree::BulkLoadHilbert(tree_pager.get(), ref.range,
                                        scratch.get(), params, 1 << 22);
  }

  TestDisk td;
  std::unique_ptr<Pager> tree_pager;
  std::unique_ptr<Pager> scratch;
  std::vector<std::unique_ptr<Pager>> keep;
};

TEST(RTreeBulkLoad, NodeCapacityFitsPaperFanout) {
  // (8192 - 8) / 20 = 409 >= the paper's fanout of 400.
  EXPECT_EQ(kNodeCapacity, 409u);
  EXPECT_GE(kNodeCapacity, RTreeParams().max_entries);
}

TEST(RTreeBulkLoad, ValidatesAndCountsEntries) {
  TreeFixture f;
  const auto rects = UniformRects(20000, RectF(0, 0, 500, 500), 1.0f, 42);
  RTreeParams params;
  params.max_entries = 64;
  auto tree = f.Build(rects, params);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
  EXPECT_EQ(tree->meta().entry_count, 20000u);
  EXPECT_GE(tree->height(), 2u);
  std::vector<RectF> all;
  ASSERT_TRUE(tree->CollectAll(&all).ok());
  EXPECT_EQ(all.size(), 20000u);
}

TEST(RTreeBulkLoad, PaperPackingIsAboutNinetyPercent) {
  TreeFixture f;
  const auto rects = UniformRects(60000, RectF(0, 0, 500, 500), 0.5f, 7);
  RTreeParams params;  // 400 fanout, 75 % fill, 20 % slack.
  auto tree = f.Build(rects, params);
  ASSERT_TRUE(tree.ok());
  // The paper reports ~90 % average packing with this heuristic; accept a
  // broad band since the exact value is data dependent.
  EXPECT_GT(tree->AveragePacking(), 0.74);
  EXPECT_LE(tree->AveragePacking(), 1.0);
}

TEST(RTreeBulkLoad, LeavesAreContiguousLowPages) {
  // Bulk loading writes all leaves before any internal node, so sibling
  // leaves sit on consecutive pages — the layout property behind ST's
  // sequential reads (§6.2).
  TreeFixture f;
  const auto rects = UniformRects(5000, RectF(0, 0, 100, 100), 0.5f, 3);
  RTreeParams params;
  params.max_entries = 32;
  auto tree = f.Build(rects, params);
  ASSERT_TRUE(tree.ok());
  // Root is the last allocated page.
  EXPECT_EQ(tree->root(), tree->node_count() - 1);
  EXPECT_EQ(f.tree_pager->page_count(), tree->node_count());
  // Leaves occupy pages [0, leaf_count).
  uint8_t buf[kPageSize];
  for (PageId p = 0; p < tree->meta().leaf_count; ++p) {
    ASSERT_TRUE(tree->ReadNode(p, buf).ok());
    EXPECT_EQ(NodeView(buf).level(), 0);
  }
}

TEST(RTreeBulkLoad, EmptyInputGivesEmptyTree) {
  TreeFixture f;
  auto tree = f.Build({}, RTreeParams());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->meta().entry_count, 0u);
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_TRUE(tree->Validate().ok());
  std::vector<RectF> out;
  ASSERT_TRUE(tree->WindowQuery(RectF(-1e9f, -1e9f, 1e9f, 1e9f), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(RTreeBulkLoad, SingleRect) {
  TreeFixture f;
  auto tree = f.Build({RectF(1, 2, 3, 4, 99)}, RTreeParams());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_EQ(tree->node_count(), 1u);
  std::vector<RectF> out;
  ASSERT_TRUE(tree->WindowQuery(RectF(2, 3, 2, 3), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 99u);
}

TEST(RTreeBulkLoadSTR, ValidatesAndMatchesBruteForceQueries) {
  TreeFixture f;
  const auto rects = ClusteredRects(8000, RectF(0, 0, 1000, 1000), 20, 15.0f,
                                    2.0f, 17);
  RTreeParams params;
  params.max_entries = 50;
  auto tree = f.Build(rects, params, /*str=*/true);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->meta().entry_count, 8000u);

  const RectF window(100, 100, 300, 280);
  std::vector<RectF> got;
  ASSERT_TRUE(tree->WindowQuery(window, &got).ok());
  std::vector<ObjectId> got_ids, want_ids;
  for (const RectF& r : got) got_ids.push_back(r.id);
  for (const RectF& r : rects) {
    if (r.Intersects(window)) want_ids.push_back(r.id);
  }
  std::sort(got_ids.begin(), got_ids.end());
  std::sort(want_ids.begin(), want_ids.end());
  EXPECT_EQ(got_ids, want_ids);
}

TEST(RTreeInsert, BuildsValidTreeAndAnswersQueries) {
  TestDisk td;
  auto pager = td.NewPager("tree");
  RTreeParams params;
  params.max_entries = 16;  // Many splits.
  auto tree = RTree::CreateEmpty(pager.get(), params);
  ASSERT_TRUE(tree.ok());
  const auto rects = UniformRects(3000, RectF(0, 0, 300, 300), 2.0f, 5);
  for (const RectF& r : rects) {
    ASSERT_TRUE(tree->Insert(r).ok());
  }
  EXPECT_EQ(tree->meta().entry_count, 3000u);
  EXPECT_GE(tree->height(), 3u);
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();

  const RectF window(50, 50, 120, 90);
  std::vector<RectF> got;
  ASSERT_TRUE(tree->WindowQuery(window, &got).ok());
  size_t want = 0;
  for (const RectF& r : rects) {
    if (r.Intersects(window)) want++;
  }
  EXPECT_EQ(got.size(), want);
}

TEST(RTreeInsert, RejectsMalformedRect) {
  TestDisk td;
  auto pager = td.NewPager("tree");
  auto tree = RTree::CreateEmpty(pager.get(), RTreeParams());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Insert(RectF(5, 0, 4, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(RTreeInsert, SplitRespectsMinEntries) {
  TestDisk td;
  auto pager = td.NewPager("tree");
  RTreeParams params;
  params.max_entries = 8;
  params.min_entries = 3;
  auto tree = RTree::CreateEmpty(pager.get(), params);
  ASSERT_TRUE(tree.ok());
  // Adversarial: two far-apart clusters, so quadratic split is tempted to
  // make a singleton group.
  for (int i = 0; i < 200; ++i) {
    const float base = (i % 2 == 0) ? 0.0f : 1000.0f;
    const float off = static_cast<float>(i) * 0.01f;
    ASSERT_TRUE(tree->Insert(RectF(base + off, base + off, base + off + 1,
                                   base + off + 1,
                                   static_cast<ObjectId>(i)))
                    .ok());
  }
  ASSERT_TRUE(tree->Validate().ok());
  // Every non-root node must hold >= min_entries.
  uint8_t buf[kPageSize];
  for (PageId p = 0; p < pager->page_count(); ++p) {
    ASSERT_TRUE(tree->ReadNode(p, buf).ok());
    const NodeView node(buf);
    if (p != tree->root()) {
      EXPECT_GE(node.count(), params.min_entries);
    }
  }
}

TEST(RTreeInsert, BulkLoadedTreeAcceptsInserts) {
  TreeFixture f;
  const auto rects = UniformRects(2000, RectF(0, 0, 100, 100), 1.0f, 9);
  RTreeParams params;
  params.max_entries = 32;
  auto tree = f.Build(rects, params);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 500; ++i) {
    const float x = static_cast<float>(i % 100);
    ASSERT_TRUE(
        tree->Insert(RectF(x, x, x + 1, x + 1, 100000u + i)).ok());
  }
  EXPECT_EQ(tree->meta().entry_count, 2500u);
  EXPECT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
}

TEST(RTreeBulkLoad, PageRequestAccountingDuringBuild) {
  TreeFixture f;
  const auto rects = UniformRects(20000, RectF(0, 0, 100, 100), 0.2f, 21);
  f.td.disk.ResetStats();
  RTreeParams params;
  auto tree = f.Build(rects, params);
  ASSERT_TRUE(tree.ok());
  // Tree pages were written exactly once each.
  const auto& dev = f.td.disk.device_stats()[f.tree_pager->device_id()];
  EXPECT_EQ(dev.pages_written, tree->node_count());
  EXPECT_EQ(dev.pages_read, 0u);
}

}  // namespace
}  // namespace sj
