#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace sj {
namespace {

TEST(ThreadPool, CompletesAllTasks) {
  for (const uint32_t threads : {0u, 1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.Submit([&done] { done.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(done.load(), 100) << "threads=" << threads;
  }
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&ran_on] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&ran_on] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_NE(ran_on, caller);
}

TEST(ThreadPool, PendingTasksFinishBeforeDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      // Futures dropped: destruction must still run every queued task.
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  for (const uint32_t threads : {0u, 2u}) {
    ThreadPool pool(threads);
    std::future<void> f =
        pool.Submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(f.get(), std::runtime_error) << "threads=" << threads;
  }
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const uint32_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> visits(257);
    const Status s = ParallelFor(threads, visits.size(), [&](uint64_t i) {
      visits[i].fetch_add(1);
      return Status::OK();
    });
    EXPECT_TRUE(s.ok());
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, EmptyRangeIsOk) {
  EXPECT_TRUE(ParallelFor(4, 0, [](uint64_t) {
                return Status::Internal("never called");
              }).ok());
}

TEST(ParallelFor, ReturnsLowestIndexError) {
  // Several tasks fail; the reported status must be the lowest-index one
  // regardless of scheduling.
  for (const uint32_t threads : {1u, 2u, 8u}) {
    const Status s = ParallelFor(threads, 64, [&](uint64_t i) -> Status {
      if (i == 7 || i == 40) {
        return Status::Internal("fail " + std::to_string(i));
      }
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("fail 7"), std::string::npos)
        << "threads=" << threads << " got: " << s.ToString();
  }
}

TEST(ParallelFor, ExceptionPropagates) {
  EXPECT_THROW(ParallelFor(4, 16,
                           [](uint64_t i) -> Status {
                             if (i == 5) throw std::runtime_error("boom");
                             return Status::OK();
                           }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Task groups and the shared-pool morsel mode.
// ---------------------------------------------------------------------------

TEST(ThreadPoolGroup, WaitCoversAllTasksAndHelps) {
  for (const uint32_t threads : {0u, 1u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> done{0};
    ThreadPool::Group group(pool);
    for (int i = 0; i < 64; ++i) {
      group.Submit([&done] { done.fetch_add(1); });
    }
    group.Wait();  // Helping: with one worker, the caller runs most of these.
    EXPECT_EQ(done.load(), 64) << "threads=" << threads;
  }
}

TEST(ThreadPoolGroup, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  ThreadPool::Group group(pool);
  for (int i = 0; i < 8; ++i) {
    group.Submit([i] {
      if (i == 3) throw std::runtime_error("group task failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(ThreadPoolGroup, ConcurrentGroupsInterleaveFairly) {
  // A group with 200 tasks and a group with 4 share one worker; because
  // workers drain groups round-robin (one task per group per turn), the
  // small group finishes well before the big one's backlog clears — the
  // fairness a shared service pool needs.
  ThreadPool pool(1);
  std::atomic<int> big_done{0};
  std::atomic<int> small_done{0};
  std::atomic<int> big_done_when_small_finished{-1};

  ThreadPool::Group big(pool);
  ThreadPool::Group small(pool);
  for (int i = 0; i < 200; ++i) {
    big.Submit([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      big_done.fetch_add(1);
    });
  }
  for (int i = 0; i < 4; ++i) {
    small.Submit([&, i] {
      if (small_done.fetch_add(1) + 1 == 4) {
        big_done_when_small_finished.store(big_done.load());
      }
      (void)i;
    });
  }
  small.Wait();  // The waiter helps its own group, never the other's.
  big.Wait();
  EXPECT_EQ(big_done.load(), 200);
  EXPECT_EQ(small_done.load(), 4);
  // Round-robin means the small group saw at most ~one big task per small
  // task plus the one in flight; far below the 200-task backlog.
  EXPECT_LE(big_done_when_small_finished.load(), 20);
}

TEST(ParallelFor, SharedPoolMatchesPrivatePool) {
  ThreadPool shared(4);
  for (const uint32_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> visits(311);
    const Status s =
        ParallelFor(&shared, threads, visits.size(), [&](uint64_t i) {
          visits[i].fetch_add(1);
          return Status::OK();
        });
    EXPECT_TRUE(s.ok());
    for (size_t i = 0; i < visits.size(); ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, SharedPoolReturnsLowestIndexError) {
  ThreadPool shared(3);
  const Status s = ParallelFor(&shared, 8, 64, [&](uint64_t i) -> Status {
    if (i == 9 || i == 33) {
      return Status::Internal("fail " + std::to_string(i));
    }
    return Status::OK();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("fail 9"), std::string::npos) << s.ToString();
}

TEST(ParallelFor, NestedOnSharedPoolDoesNotDeadlock) {
  // The deadlock trap of a fixed shared pool: outer tasks occupy every
  // worker and each fans out an inner ParallelFor onto the same pool.
  // Helping waits must keep everything progressing.
  ThreadPool shared(2);
  std::atomic<int> inner_total{0};
  const Status s = ParallelFor(&shared, 4, 8, [&](uint64_t) -> Status {
    return ParallelFor(&shared, 4, 16, [&](uint64_t) -> Status {
      inner_total.fetch_add(1);
      return Status::OK();
    });
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ParallelFor, SharedPoolWithZeroWorkersRunsSerially) {
  // A service configured with worker_threads=0 hands executors a pool of
  // size 0; ParallelFor must fall back to inline execution.
  ThreadPool shared(0);
  std::vector<int> visits(64, 0);  // Unsynchronized: serial or bust.
  const Status s = ParallelFor(&shared, 8, visits.size(), [&](uint64_t i) {
    visits[i]++;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  for (size_t i = 0; i < visits.size(); ++i) EXPECT_EQ(visits[i], 1);
}

}  // namespace
}  // namespace sj
