#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace sj {
namespace {

TEST(ThreadPool, CompletesAllTasks) {
  for (const uint32_t threads : {0u, 1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.Submit([&done] { done.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(done.load(), 100) << "threads=" << threads;
  }
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&ran_on] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&ran_on] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_NE(ran_on, caller);
}

TEST(ThreadPool, PendingTasksFinishBeforeDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      // Futures dropped: destruction must still run every queued task.
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  for (const uint32_t threads : {0u, 2u}) {
    ThreadPool pool(threads);
    std::future<void> f =
        pool.Submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(f.get(), std::runtime_error) << "threads=" << threads;
  }
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const uint32_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> visits(257);
    const Status s = ParallelFor(threads, visits.size(), [&](uint64_t i) {
      visits[i].fetch_add(1);
      return Status::OK();
    });
    EXPECT_TRUE(s.ok());
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, EmptyRangeIsOk) {
  EXPECT_TRUE(ParallelFor(4, 0, [](uint64_t) {
                return Status::Internal("never called");
              }).ok());
}

TEST(ParallelFor, ReturnsLowestIndexError) {
  // Several tasks fail; the reported status must be the lowest-index one
  // regardless of scheduling.
  for (const uint32_t threads : {1u, 2u, 8u}) {
    const Status s = ParallelFor(threads, 64, [&](uint64_t i) -> Status {
      if (i == 7 || i == 40) {
        return Status::Internal("fail " + std::to_string(i));
      }
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("fail 7"), std::string::npos)
        << "threads=" << threads << " got: " << s.ToString();
  }
}

TEST(ParallelFor, ExceptionPropagates) {
  EXPECT_THROW(ParallelFor(4, 16,
                           [](uint64_t i) -> Status {
                             if (i == 5) throw std::runtime_error("boom");
                             return Status::OK();
                           }),
               std::runtime_error);
}

}  // namespace
}  // namespace sj
