#include "test_util.h"

#include "geometry/extent.h"

namespace sj {
namespace testing_util {

DatasetRef MakeDataset(TestDisk* td, const std::vector<RectF>& rects,
                       const std::string& name,
                       std::vector<std::unique_ptr<Pager>>* keepalive) {
  auto pager = td->NewPager(name);
  StreamWriter<RectF> writer(pager.get());
  const PageId first = writer.first_page();
  for (const RectF& r : rects) writer.Append(r);
  auto n = writer.Finish();
  DatasetRef ref;
  ref.range = StreamRange{pager.get(), first, n.value()};
  ref.extent = ComputeExtent(rects);
  keepalive->push_back(std::move(pager));
  return ref;
}

std::vector<IdPair> BruteForcePairs(const std::vector<RectF>& a,
                                    const std::vector<RectF>& b) {
  std::vector<IdPair> out;
  for (const RectF& ra : a) {
    for (const RectF& rb : b) {
      if (ra.Intersects(rb)) out.push_back({ra.id, rb.id});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<IdPair> BruteForceExactPairs(const std::vector<RectF>& a,
                                         const std::vector<RectF>& b,
                                         const std::vector<Segment>& ga,
                                         const std::vector<Segment>& gb) {
  std::vector<IdPair> out;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (a[i].Intersects(b[j]) && SegmentsIntersect(ga[i], gb[j])) {
        out.push_back({a[i].id, b[j].id});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace testing_util
}  // namespace sj
