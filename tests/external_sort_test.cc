#include "sort/external_sort.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::TestDisk;

StreamRange WriteRects(Pager* pager, const std::vector<RectF>& rects) {
  StreamWriter<RectF> writer(pager);
  const PageId first = writer.first_page();
  for (const RectF& r : rects) writer.Append(r);
  auto n = writer.Finish();
  SJ_CHECK(n.ok());
  return StreamRange{pager, first, n.value()};
}

std::vector<RectF> ReadRects(const StreamRange& range) {
  std::vector<RectF> out;
  StreamReader<RectF> reader(range.pager, range.first_page, range.count);
  while (auto r = reader.Next()) out.push_back(*r);
  return out;
}

class ExternalSortTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExternalSortTest, SortsByYLo) {
  const uint64_t n = GetParam();
  TestDisk td;
  auto input = td.NewPager("input");
  auto scratch = td.NewPager("scratch");
  auto output = td.NewPager("output");
  auto rects = UniformRects(n, RectF(0, 0, 1000, 1000), 5.0f, /*seed=*/n + 1);
  const StreamRange in = WriteRects(input.get(), rects);

  // Memory for ~1000 records per run: forces many runs for large n.
  ExternalSorter<RectF, OrderByYLo> sorter(
      std::max<size_t>(kPageSize * 4, 1000 * sizeof(RectF)), scratch.get());
  auto sorted = sorter.Sort(in, output.get());
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_EQ(sorted->count, n);

  std::vector<RectF> result = ReadRects(*sorted);
  ASSERT_EQ(result.size(), rects.size());
  std::sort(rects.begin(), rects.end(), OrderByYLo());
  // Same multiset in sorted order (OrderByYLo ties broken by id, so the
  // result is fully deterministic).
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_EQ(result[i], rects[i]) << "mismatch at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExternalSortTest,
                         ::testing::Values(0, 1, 2, 999, 1000, 1001, 12345,
                                           50000));

TEST(ExternalSort, SingleRunCopiesToRequestedPager) {
  TestDisk td;
  auto input = td.NewPager("input");
  auto scratch = td.NewPager("scratch");
  auto output = td.NewPager("output");
  const StreamRange in = WriteRects(
      input.get(), UniformRects(100, RectF(0, 0, 10, 10), 1.0f, 3));
  ExternalSorter<RectF, OrderByYLo> sorter(1 << 20, scratch.get());
  auto sorted = sorter.Sort(in, output.get());
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->pager, output.get());
  EXPECT_EQ(sorted->count, 100u);
}

TEST(ExternalSort, MultiPassMergeWithTinyMemory) {
  TestDisk td;
  auto input = td.NewPager("input");
  auto scratch = td.NewPager("scratch");
  auto output = td.NewPager("output");
  auto rects = UniformRects(20000, RectF(0, 0, 100, 100), 1.0f, 7);
  const StreamRange in = WriteRects(input.get(), rects);
  // Minimum legal memory: 4 pages -> fan-in 3, runs of ~1638 records, so
  // 20000 records require several merge passes.
  ExternalSorter<RectF, OrderByYLo> sorter(kPageSize * 4, scratch.get());
  EXPECT_EQ(sorter.MaxFanIn(), 3u);
  EXPECT_EQ(sorter.merge_block_pages(), 1u);
  auto sorted = sorter.Sort(in, output.get());
  ASSERT_TRUE(sorted.ok());
  std::vector<RectF> result = ReadRects(*sorted);
  std::sort(rects.begin(), rects.end(), OrderByYLo());
  EXPECT_EQ(result.size(), rects.size());
  EXPECT_TRUE(std::equal(result.begin(), result.end(), rects.begin()));
}

TEST(ExternalSort, EmptyInputYieldsEmptyOutput) {
  TestDisk td;
  auto input = td.NewPager("input");
  auto scratch = td.NewPager("scratch");
  auto output = td.NewPager("output");
  const StreamRange in = WriteRects(input.get(), {});
  ExternalSorter<RectF, OrderByYLo> sorter(1 << 20, scratch.get());
  auto sorted = sorter.Sort(in, output.get());
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->count, 0u);
}

TEST(ExternalSort, SsSJIoPassStructure) {
  // The I/O shape the paper describes for SSSJ sorting: sequential run
  // writes, then a merge whose reads alternate between more runs than the
  // disk cache has segments (random). Machine 2: 2 segments.
  TestDisk td(MachineModel::Machine2());
  auto input = td.NewPager("input");
  auto scratch = td.NewPager("scratch");
  auto output = td.NewPager("output");
  auto rects = UniformRects(30000, RectF(0, 0, 100, 100), 1.0f, 11);
  const StreamRange in = WriteRects(input.get(), rects);
  td.disk.ResetStats();

  ExternalSorter<RectF, OrderByYLo> sorter(6000 * sizeof(RectF),
                                           scratch.get());
  ASSERT_GE(sorter.MaxFanIn(), 5u);  // Guarantees a single merge pass.
  ASSERT_TRUE(sorter.Sort(in, output.get()).ok());
  const DiskStats& s = td.disk.stats();
  const uint64_t data_pages = (30000 + 408) / 409;
  // One read of the input + one read of the runs; one write of the runs +
  // one write of the sorted output.
  EXPECT_NEAR(static_cast<double>(s.pages_read), 2.0 * data_pages,
              data_pages * 0.1);
  EXPECT_NEAR(static_cast<double>(s.pages_written), 2.0 * data_pages,
              data_pages * 0.1);
  // Merge reads hop between runs: a large share of read requests is
  // non-sequential.
  EXPECT_GT(s.random_read_requests, s.read_requests / 4);
}

TEST(MergingReader, MergesRunsInOrder) {
  TestDisk td;
  auto scratch = td.NewPager("scratch");
  std::vector<StreamRange> runs;
  // Three interleaved sorted runs.
  for (int run = 0; run < 3; ++run) {
    std::vector<RectF> rects;
    for (int i = 0; i < 500; ++i) {
      const float y = static_cast<float>(i * 3 + run);
      rects.push_back(RectF(0, y, 1, y + 1, static_cast<ObjectId>(run * 1000 + i)));
    }
    runs.push_back(WriteRects(scratch.get(), rects));
  }
  MergingReader<RectF, OrderByYLo> merger(runs, /*block_pages=*/2);
  float prev = -1.0f;
  uint64_t count = 0;
  while (auto r = merger.Next()) {
    EXPECT_GE(r->ylo, prev);
    prev = r->ylo;
    count++;
  }
  EXPECT_EQ(count, 1500u);
}

}  // namespace
}  // namespace sj
