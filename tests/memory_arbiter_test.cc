// Unit suite for the per-query memory governor: grant accounting, RAII
// release, over-subscription denial, shrinkable grants with floors,
// high-water marks, child-scope folding, and the strict-mode abort on
// ungoverned allocation.

#include "core/memory_arbiter.h"

#include <gtest/gtest.h>

#include <utility>

namespace sj {
namespace {

TEST(MemoryArbiter, GrantAccounting) {
  MemoryArbiter arbiter(1000);
  EXPECT_EQ(arbiter.budget(), 1000u);
  EXPECT_EQ(arbiter.in_use(), 0u);
  EXPECT_EQ(arbiter.available(), 1000u);

  auto a = arbiter.Acquire("sort.runs", 400);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->bytes(), 400u);
  EXPECT_EQ(a->component(), "sort.runs");
  EXPECT_EQ(arbiter.in_use(), 400u);
  EXPECT_EQ(arbiter.available(), 600u);

  auto b = arbiter.Acquire("sweep", 600);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(arbiter.in_use(), 1000u);
  EXPECT_EQ(arbiter.available(), 0u);
  EXPECT_EQ(arbiter.peak_bytes(), 1000u);
}

TEST(MemoryArbiter, OverSubscriptionIsDenied) {
  MemoryArbiter arbiter(1000);
  auto a = arbiter.Acquire("sort.runs", 900);
  ASSERT_TRUE(a.ok());
  auto b = arbiter.Acquire("sweep", 200);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
  // The message names the component, the request, and what remains.
  EXPECT_NE(b.status().message().find("sweep"), std::string::npos);
  EXPECT_NE(b.status().message().find("100"), std::string::npos);
  // The denial had no side effects.
  EXPECT_EQ(arbiter.in_use(), 900u);
}

TEST(MemoryArbiter, RaiiReleaseReturnsBytes) {
  MemoryArbiter arbiter(1000);
  {
    auto grant = arbiter.Acquire("sweep", 700);
    ASSERT_TRUE(grant.ok());
    EXPECT_EQ(arbiter.in_use(), 700u);
  }
  EXPECT_EQ(arbiter.in_use(), 0u);
  // Peak survives the release.
  EXPECT_EQ(arbiter.peak_bytes(), 700u);
  // The freed bytes are grantable again.
  EXPECT_TRUE(arbiter.Acquire("sort.runs", 1000).ok());
}

TEST(MemoryArbiter, MoveTransfersOwnership) {
  MemoryArbiter arbiter(1000);
  auto a = arbiter.Acquire("sweep", 300);
  ASSERT_TRUE(a.ok());
  MemoryGrant moved = std::move(*a);
  EXPECT_FALSE(a->active());
  EXPECT_TRUE(moved.active());
  EXPECT_EQ(arbiter.in_use(), 300u);
  moved.Release();
  EXPECT_EQ(arbiter.in_use(), 0u);
  moved.Release();  // Idempotent.
  EXPECT_EQ(arbiter.in_use(), 0u);
}

TEST(MemoryArbiter, ShrinkableGrantClampsToAvailability) {
  MemoryArbiter arbiter(1000);
  auto big = arbiter.Acquire("sort.runs", 800);
  ASSERT_TRUE(big.ok());
  // Only 200 left: the request shrinks to it.
  MemoryGrant shrunk = arbiter.AcquireShrinkable("sweep", 500, 50);
  EXPECT_EQ(shrunk.bytes(), 200u);
  // Nothing left at all: the floor still grants (progress minimum).
  MemoryGrant floored = arbiter.AcquireShrinkable("pool", 500, 50);
  EXPECT_EQ(floored.bytes(), 50u);
  // A request below the floor is honored as-is, never inflated.
  MemoryGrant tiny = arbiter.AcquireShrinkable("pool", 30, 50);
  EXPECT_EQ(tiny.bytes(), 30u);
}

TEST(MemoryArbiter, GrowAndShrink) {
  MemoryArbiter arbiter(1000);
  MemoryGrant grant = arbiter.AcquireShrinkable("sweep", 400, 0);
  EXPECT_TRUE(grant.TryGrow(900));
  EXPECT_EQ(grant.bytes(), 900u);
  EXPECT_FALSE(grant.TryGrow(1100));  // Over budget: refused, unchanged.
  EXPECT_EQ(grant.bytes(), 900u);
  grant.Shrink(100);
  EXPECT_EQ(grant.bytes(), 100u);
  EXPECT_EQ(arbiter.available(), 900u);
}

TEST(MemoryArbiter, HighWaterMarksPerComponent) {
  MemoryArbiter arbiter(1000);
  {
    auto grant = arbiter.Acquire("sweep", 600);
    ASSERT_TRUE(grant.ok());
    grant->NoteUsage(250);
    grant->NoteUsage(475);
    grant->NoteUsage(100);  // High water keeps the max.
  }
  auto again = arbiter.Acquire("sweep", 300);
  ASSERT_TRUE(again.ok());
  const auto components = arbiter.ComponentStats();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].component, "sweep");
  EXPECT_EQ(components[0].granted_high_water, 600u);
  EXPECT_EQ(components[0].used_high_water, 475u);
}

TEST(MemoryArbiter, NonStrictRecordsOvershootInsteadOfAborting) {
  MemoryArbiter arbiter(1000, /*strict=*/false);
  auto grant = arbiter.Acquire("sweep", 100);
  ASSERT_TRUE(grant.ok());
  grant->NoteUsage(5000);  // Ungoverned growth: recorded, not fatal.
  EXPECT_EQ(arbiter.ComponentStats()[0].used_high_water, 5000u);
  // The *granted* peak never exceeds the budget.
  EXPECT_LE(arbiter.peak_bytes(), arbiter.budget());
}

TEST(MemoryArbiterDeathTest, StrictAbortsOnUsageAboveGrant) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        MemoryArbiter arbiter(1000, /*strict=*/true);
        auto grant = arbiter.Acquire("sweep", 100);
        grant->NoteUsage(101);
      },
      "ungoverned allocation");
}

TEST(MemoryArbiter, FoldChildTakesMaxAcrossWorkUnits) {
  // The parallel engine's serial-equivalent model: each work unit runs
  // against its own arbiter; folding takes the max, so the result is
  // independent of fold order (and with it, of the thread count).
  MemoryArbiter parent(10000);
  auto live = parent.Acquire("pbsm.writers", 1000);
  ASSERT_TRUE(live.ok());

  MemoryArbiter child1(10000), child2(10000);
  { MemoryGrant g = child1.AcquireShrinkable("pbsm.partition", 3000, 0); }
  {
    MemoryGrant g = child2.AcquireShrinkable("pbsm.partition", 7000, 0);
    g.NoteUsage(6500);
  }
  parent.FoldChild(child2);
  parent.FoldChild(child1);
  // Peak: grants live at fold time plus the heaviest child.
  EXPECT_EQ(parent.peak_bytes(), 8000u);
  bool found = false;
  for (const auto& c : parent.ComponentStats()) {
    if (c.component == "pbsm.partition") {
      EXPECT_EQ(c.granted_high_water, 7000u);
      EXPECT_EQ(c.used_high_water, 6500u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MemoryPlan, GrantLookupAndDescribe) {
  MemoryPlan plan;
  plan.budget_bytes = 24u << 20;
  plan.grants.push_back({grants::kSortRuns, 12u << 20});
  plan.grants.push_back({grants::kSweep, 64u << 10});
  EXPECT_EQ(plan.GrantFor(grants::kSortRuns), 12u << 20);
  EXPECT_EQ(plan.GrantFor(grants::kSweep), 64u << 10);
  EXPECT_EQ(plan.GrantFor("nonexistent"), 0u);
  const std::string described = plan.Describe();
  EXPECT_NE(described.find("sort.runs"), std::string::npos);
  EXPECT_NE(described.find("sweep"), std::string::npos);
  EXPECT_NE(described.find("budget"), std::string::npos);
}

}  // namespace
}  // namespace sj
