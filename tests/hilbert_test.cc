#include "geometry/hilbert.h"

#include <gtest/gtest.h>

#include <set>

namespace sj {
namespace {

TEST(Hilbert, BijectiveOnSmallGrid) {
  const HilbertCurve curve(4);  // 16x16 grid.
  std::set<uint64_t> seen;
  for (uint32_t y = 0; y < 16; ++y) {
    for (uint32_t x = 0; x < 16; ++x) {
      const uint64_t d = curve.Distance(x, y);
      EXPECT_LT(d, 256u);
      EXPECT_TRUE(seen.insert(d).second) << "duplicate distance " << d;
      uint32_t rx, ry;
      curve.Point(d, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Hilbert, ConsecutiveDistancesAreGridNeighbors) {
  const HilbertCurve curve(5);  // 32x32.
  uint32_t px, py;
  curve.Point(0, &px, &py);
  for (uint64_t d = 1; d < 1024; ++d) {
    uint32_t x, y;
    curve.Point(d, &x, &y);
    const uint32_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    EXPECT_EQ(manhattan, 1u) << "curve jumps at distance " << d;
    px = x;
    py = y;
  }
}

TEST(Hilbert, KeyClampsOutOfExtent) {
  const HilbertCurve curve(8);
  const RectF extent(0, 0, 100, 100);
  // Outside coordinates clamp to the boundary rather than wrapping.
  EXPECT_EQ(HilbertKey(curve, extent, -50, -50),
            HilbertKey(curve, extent, 0, 0));
  EXPECT_EQ(HilbertKey(curve, extent, 150, 150),
            HilbertKey(curve, extent, 100, 100));
}

TEST(Hilbert, DegenerateExtentMapsToCellZero) {
  const HilbertCurve curve(8);
  const RectF extent(5, 0, 5, 100);  // Zero-width x axis.
  EXPECT_EQ(HilbertKey(curve, extent, 5, 0), curve.Distance(0, 0));
}

TEST(Hilbert, NearbyPointsGetNearbyKeys) {
  // Locality sanity: the average key distance of adjacent cells must be
  // far below that of random cell pairs.
  const HilbertCurve curve(8);
  const uint32_t n = curve.grid_size();
  double adjacent = 0.0, random_pairs = 0.0;
  int count = 0;
  for (uint32_t y = 0; y < n; y += 7) {
    for (uint32_t x = 0; x + 1 < n; x += 7) {
      const double d1 = static_cast<double>(curve.Distance(x, y));
      const double d2 = static_cast<double>(curve.Distance(x + 1, y));
      adjacent += d1 > d2 ? d1 - d2 : d2 - d1;
      const double d3 =
          static_cast<double>(curve.Distance((x * 97 + 13) % n, (y * 31 + 7) % n));
      random_pairs += d1 > d3 ? d1 - d3 : d3 - d1;
      count++;
    }
  }
  EXPECT_LT(adjacent / count, 0.05 * random_pairs / count);
}

}  // namespace
}  // namespace sj
