// Differential suite for the external sort's perf layers (parallel run
// formation, loser-tree merge, write-behind output): every configuration
// must produce byte-identical output and identical modeled io_seconds to
// the serial pipeline — the determinism contract the whole-join
// differential harness relies on.
#include <algorithm>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/memory_arbiter.h"
#include "datagen/synthetic.h"
#include "io/pager.h"
#include "io/prefetch.h"
#include "io/storage.h"
#include "io/stream.h"
#include "io/write_behind.h"
#include "sort/external_pq.h"
#include "sort/external_sort.h"
#include "sort/loser_tree.h"
#include "sort/run_layout.h"
#include "sort/sort_config.h"
#include "test_util.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace sj {
namespace {

using testing_util::TestDisk;

StreamRange WriteRects(Pager* pager, const std::vector<RectF>& rects) {
  StreamWriter<RectF> writer(pager);
  const PageId first = writer.first_page();
  for (const RectF& r : rects) writer.Append(r);
  auto n = writer.Finish();
  SJ_CHECK(n.ok());
  return StreamRange{pager, first, n.value()};
}

std::vector<RectF> ReadRects(const StreamRange& range) {
  std::vector<RectF> out;
  StreamReader<RectF> reader(range.pager, range.first_page, range.count);
  while (auto r = reader.Next()) out.push_back(*r);
  return out;
}

/// Raw page images of a sorted range — "byte-identical" means the pages,
/// not just the record sequence (page-tail slack included).
std::vector<uint8_t> ReadPages(const StreamRange& range) {
  constexpr uint32_t per_page = StreamWriter<RectF>::kRecordsPerPage;
  const uint64_t npages = (range.count + per_page - 1) / per_page;
  std::vector<uint8_t> bytes(npages * kPageSize);
  for (uint64_t p = 0; p < npages; ++p) {
    SJ_CHECK_OK(range.pager->backend()->ReadPage(
        static_cast<PageId>(range.first_page + p),
        bytes.data() + p * kPageSize));
  }
  return bytes;
}

struct RunOutcome {
  std::vector<uint8_t> pages;
  DiskStats disk;
  size_t peak_memory = 0;
  SortStats sort;
};

struct RunConfig {
  uint32_t threads = 1;
  bool write_behind = false;
  uint32_t fan_in = 0;  // 0 = auto.
  bool file_backend = false;
  bool prefetch = false;
  MergeStructure structure = MergeStructure::kLoserTree;
};

/// One full sort under `config` on a fresh DiskModel; ~10 runs at the
/// given budget so both formation parallelism and multi-group merging
/// engage.
RunOutcome RunOnce(const std::vector<RectF>& rects, size_t memory_bytes,
                   const RunConfig& config) {
  TestDisk td;
  std::unique_ptr<TmpFileStorageFactory> factory;
  StorageFactory* storage = nullptr;
  if (config.file_backend) {
    auto made = TmpFileStorageFactory::Make();
    SJ_CHECK(made.ok()) << made.status().ToString();
    factory = std::move(made).value();
    storage = factory.get();
  }
  auto make = [&](const char* name) {
    Result<std::unique_ptr<Pager>> pager = MakePager(storage, &td.disk, name);
    SJ_CHECK(pager.ok()) << pager.status().ToString();
    return std::move(pager).value();
  };
  auto input = make("input");
  auto scratch = make("scratch");
  auto output = make("output");
  const StreamRange in = WriteRects(input.get(), rects);
  td.disk.ResetStats();

  MemoryArbiter arbiter(memory_bytes, /*strict=*/false);
  SortConfig sort_config;
  sort_config.parallel_runs = config.threads > 1;
  sort_config.threads = config.threads;
  sort_config.write_behind = config.write_behind;
  sort_config.merge_fan_in = config.fan_in;
  sort_config.merge_structure = config.structure;
  PrefetchContext prefetch;
  prefetch.enabled = config.prefetch;

  ExternalSorter<RectF, OrderByYLo> sorter(memory_bytes, scratch.get(),
                                           OrderByYLo(), &arbiter, prefetch,
                                           sort_config);
  auto sorted = sorter.Sort(in, output.get());
  SJ_CHECK(sorted.ok()) << sorted.status().ToString();

  RunOutcome outcome;
  outcome.pages = ReadPages(*sorted);
  outcome.disk = td.disk.stats();
  outcome.peak_memory = arbiter.peak_bytes();
  outcome.sort = sorter.stats();
  return outcome;
}

// The seeded differential sweep (the PR's acceptance gate): {1,2,8}
// threads x {write-behind on/off} x {fan-in 2, auto, max} x {memory,
// file} backends, all against the serial/memory reference of the same
// fan-in. Output pages must match byte for byte everywhere; modeled
// io_seconds and request counts must match within a fan-in group; the
// arbiter peak must stay within the grant.
TEST(ParallelSortDifferential, AllConfigsMatchSerialReference) {
  const uint64_t n = 30000;
  const size_t memory = 3000 * sizeof(RectF);  // ~10+ formation units.
  auto rects = UniformRects(n, RectF(0, 0, 1000, 1000), 4.0f, /*seed=*/42);

  // std::sort oracle: the output record sequence every config must hit.
  std::vector<RectF> oracle = rects;
  std::sort(oracle.begin(), oracle.end(), OrderByYLo());

  // fan_in: 2 (narrowest), 0 (auto), 64 (clamped to the layout max).
  for (uint32_t fan_in : {0u, 2u, 64u}) {
    RunConfig ref_config;
    ref_config.fan_in = fan_in;
    const RunOutcome ref = RunOnce(rects, memory, ref_config);
    ASSERT_FALSE(ref.pages.empty());
    EXPECT_LE(ref.peak_memory, memory);
    EXPECT_EQ(ref.sort.parallel_units, 0u);

    // The oracle check once per fan-in (pages decode to the sorted
    // sequence).
    {
      TestDisk td;
      auto pager = td.NewPager("decode");
      const PageId first = pager->Allocate(
          static_cast<uint32_t>(ref.pages.size() / kPageSize));
      for (size_t p = 0; p < ref.pages.size() / kPageSize; ++p) {
        SJ_CHECK_OK(pager->backend()->WritePage(
            static_cast<PageId>(first + p), ref.pages.data() + p * kPageSize));
      }
      const std::vector<RectF> decoded =
          ReadRects(StreamRange{pager.get(), first, n});
      ASSERT_EQ(decoded.size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        ASSERT_EQ(decoded[i], oracle[i]) << "fan_in " << fan_in << " at " << i;
      }
    }

    for (uint32_t threads : {1u, 2u, 8u}) {
      for (bool write_behind : {false, true}) {
        for (bool file_backend : {false, true}) {
          RunConfig config;
          config.threads = threads;
          config.write_behind = write_behind;
          config.fan_in = fan_in;
          config.file_backend = file_backend;
          const RunOutcome got = RunOnce(rects, memory, config);
          const std::string label =
              "threads=" + std::to_string(threads) +
              " wb=" + std::to_string(write_behind) +
              " fan_in=" + std::to_string(fan_in) +
              " file=" + std::to_string(file_backend);
          ASSERT_EQ(got.pages.size(), ref.pages.size()) << label;
          EXPECT_EQ(std::memcmp(got.pages.data(), ref.pages.data(),
                                ref.pages.size()),
                    0)
              << label;
          EXPECT_DOUBLE_EQ(got.disk.io_seconds, ref.disk.io_seconds) << label;
          EXPECT_EQ(got.disk.pages_read, ref.disk.pages_read) << label;
          EXPECT_EQ(got.disk.pages_written, ref.disk.pages_written) << label;
          EXPECT_EQ(got.disk.read_requests, ref.disk.read_requests) << label;
          EXPECT_EQ(got.disk.write_requests, ref.disk.write_requests) << label;
          EXPECT_EQ(got.disk.random_read_requests,
                    ref.disk.random_read_requests)
              << label;
          EXPECT_LE(got.peak_memory, memory) << label;
          EXPECT_EQ(got.sort.merge_fan_in, ref.sort.merge_fan_in) << label;
          EXPECT_EQ(got.sort.merge_passes, ref.sort.merge_passes) << label;
          if (threads > 1 && !SortSerialOnly()) {
            EXPECT_GT(got.sort.parallel_units, 1u) << label;
          }
        }
      }
    }
  }
}

// The binary-heap baseline must be record-identical to the loser tree
// (both stable on (key, source)) — the bench ladder's identical-output
// assertion depends on it.
TEST(ParallelSortDifferential, HeapAndLoserTreeOutputsMatch) {
  const size_t memory = 2000 * sizeof(RectF);
  auto rects = UniformRects(20000, RectF(0, 0, 500, 500), 3.0f, /*seed=*/7);
  RunConfig tree_config;
  RunConfig heap_config;
  heap_config.structure = MergeStructure::kBinaryHeap;
  const RunOutcome tree = RunOnce(rects, memory, tree_config);
  const RunOutcome heap = RunOnce(rects, memory, heap_config);
  ASSERT_EQ(tree.pages.size(), heap.pages.size());
  EXPECT_EQ(
      std::memcmp(tree.pages.data(), heap.pages.data(), tree.pages.size()), 0);
  EXPECT_DOUBLE_EQ(tree.disk.io_seconds, heap.disk.io_seconds);
}

// Prefetch composes with the new layers without changing modeled I/O.
TEST(ParallelSortDifferential, PrefetchPlusParallelPlusWriteBehind) {
  const size_t memory = 2000 * sizeof(RectF);
  auto rects = UniformRects(15000, RectF(0, 0, 500, 500), 3.0f, /*seed=*/9);
  RunConfig ref_config;
  const RunOutcome ref = RunOnce(rects, memory, ref_config);
  RunConfig config;
  config.threads = 4;
  config.write_behind = true;
  config.prefetch = true;
  const RunOutcome got = RunOnce(rects, memory, config);
  ASSERT_EQ(got.pages.size(), ref.pages.size());
  EXPECT_EQ(std::memcmp(got.pages.data(), ref.pages.data(), ref.pages.size()),
            0);
  EXPECT_DOUBLE_EQ(got.disk.io_seconds, ref.disk.io_seconds);
}

// The serial-only escape hatch strips the thread-spawning layers: same
// output, no parallel units, even when the config asks for 8 threads.
TEST(ParallelSortDifferential, SerialOnlyGateStripsParallelLayers) {
  const size_t memory = 2000 * sizeof(RectF);
  auto rects = UniformRects(10000, RectF(0, 0, 500, 500), 3.0f, /*seed=*/11);
  RunConfig ref_config;
  const RunOutcome ref = RunOnce(rects, memory, ref_config);

  ForceSortSerialOnly(true);
  RunConfig config;
  config.threads = 8;
  config.write_behind = true;
  const RunOutcome gated = RunOnce(rects, memory, config);
  ResetSortSerialOnly();

  EXPECT_EQ(gated.sort.parallel_units, 0u);
  ASSERT_EQ(gated.pages.size(), ref.pages.size());
  EXPECT_EQ(
      std::memcmp(gated.pages.data(), ref.pages.data(), ref.pages.size()), 0);
  EXPECT_DOUBLE_EQ(gated.disk.io_seconds, ref.disk.io_seconds);
}

// A shared morsel pool (service mode) must behave like private teams.
TEST(ParallelSortDifferential, SharedPoolMatchesPrivateTeam) {
  const size_t memory = 2000 * sizeof(RectF);
  auto rects = UniformRects(15000, RectF(0, 0, 500, 500), 3.0f, /*seed=*/13);
  RunConfig ref_config;
  const RunOutcome ref = RunOnce(rects, memory, ref_config);

  TestDisk td;
  auto input = td.NewPager("input");
  auto scratch = td.NewPager("scratch");
  auto output = td.NewPager("output");
  const StreamRange in = WriteRects(input.get(), rects);
  td.disk.ResetStats();
  ThreadPool pool(4);
  SortConfig config;
  config.threads = 4;
  config.pool = &pool;
  config.write_behind = true;
  ExternalSorter<RectF, OrderByYLo> sorter(memory, scratch.get(), OrderByYLo(),
                                           nullptr, PrefetchContext(), config);
  auto sorted = sorter.Sort(in, output.get());
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  if (!SortSerialOnly()) EXPECT_GT(sorter.stats().parallel_units, 1u);
  const std::vector<uint8_t> pages = ReadPages(*sorted);
  ASSERT_EQ(pages.size(), ref.pages.size());
  EXPECT_EQ(std::memcmp(pages.data(), ref.pages.data(), pages.size()), 0);
  EXPECT_DOUBLE_EQ(td.disk.stats().io_seconds, ref.disk.io_seconds);
}

// Satellite regression: FormRuns reports the *reserved* run-buffer
// capacity up front (not the transient fill of each chunk), so a strict
// arbiter — which aborts on usage above the grant — accepts runs whose
// short final chunk still holds the full reservation.
TEST(ParallelSortDifferential, StrictArbiterAcceptsReservedChunkAccounting) {
  const size_t memory = 2000 * sizeof(RectF);
  // 2.2 runs' worth: the last run is short but reserves full capacity.
  auto rects = UniformRects(4000, RectF(0, 0, 500, 500), 3.0f, /*seed=*/17);
  TestDisk td;
  auto input = td.NewPager("input");
  auto scratch = td.NewPager("scratch");
  auto output = td.NewPager("output");
  const StreamRange in = WriteRects(input.get(), rects);
  MemoryArbiter arbiter(memory, /*strict=*/true);
  ExternalSorter<RectF, OrderByYLo> sorter(memory, scratch.get(),
                                           OrderByYLo(), &arbiter);
  ASSERT_TRUE(sorter.Sort(in, output.get()).ok());
  // The sort component reported its reserved capacity, never above it
  // (strict mode would have aborted on an overshoot).
  size_t used = 0, granted = 0;
  for (const MemoryComponentStats& c : arbiter.ComponentStats()) {
    if (c.component == grants::kSortRuns) {
      used = c.used_high_water;
      granted = c.granted_high_water;
    }
  }
  EXPECT_GT(used, 0u);
  EXPECT_LE(used, granted);
}

// --- Loser tree / merge selector unit tests ----------------------------

struct IntLess {
  bool operator()(int a, int b) const { return a < b; }
};

TEST(LoserTree, MergesWithSourceStableTies) {
  // Three sources with equal keys: ties must pop in source order.
  std::vector<std::optional<int>> heads = {5, 5, 5};
  LoserTree<int, IntLess> tree(std::move(heads), IntLess());
  EXPECT_EQ(tree.TopSource(), 0u);
  tree.ReplaceTop(std::nullopt);
  EXPECT_EQ(tree.TopSource(), 1u);
  tree.ReplaceTop(std::nullopt);
  EXPECT_EQ(tree.TopSource(), 2u);
  tree.ReplaceTop(std::nullopt);
  EXPECT_TRUE(tree.Empty());
}

TEST(LoserTree, SingleSourceAndEmpty) {
  {
    LoserTree<int, IntLess> tree({std::optional<int>(3)}, IntLess());
    EXPECT_FALSE(tree.Empty());
    EXPECT_EQ(tree.Top(), 3);
    tree.ReplaceTop(7);
    EXPECT_EQ(tree.Top(), 7);
    tree.ReplaceTop(std::nullopt);
    EXPECT_TRUE(tree.Empty());
  }
  {
    LoserTree<int, IntLess> tree({}, IntLess());
    EXPECT_TRUE(tree.Empty());
  }
}

TEST(MergeSelector, TreeAndHeapProduceIdenticalSequences) {
  // Non-power-of-two source count with duplicates across sources.
  const int k = 5;
  std::vector<std::vector<int>> runs(k);
  uint64_t state = 12345;
  auto next_rand = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((state >> 33) % 100);
  };
  for (int s = 0; s < k; ++s) {
    for (int i = 0; i < 200; ++i) runs[s].push_back(next_rand());
    std::sort(runs[s].begin(), runs[s].end());
  }
  auto drain = [&](MergeStructure structure) {
    std::vector<size_t> cursor(k, 0);
    std::vector<std::optional<int>> heads;
    for (int s = 0; s < k; ++s) heads.push_back(runs[s][cursor[s]++]);
    MergeSelector<int, IntLess> selector(std::move(heads), IntLess(),
                                         structure);
    std::vector<std::pair<int, size_t>> out;
    while (!selector.Empty()) {
      const size_t source = selector.TopSource();
      out.emplace_back(selector.Top(), source);
      selector.ReplaceTop(cursor[source] < runs[source].size()
                              ? std::optional<int>(runs[source][cursor[source]])
                              : std::nullopt);
      if (cursor[source] < runs[source].size()) cursor[source]++;
    }
    return out;
  };
  const auto tree = drain(MergeStructure::kLoserTree);
  const auto heap = drain(MergeStructure::kBinaryHeap);
  ASSERT_EQ(tree.size(), heap.size());
  ASSERT_EQ(tree.size(), size_t{k} * 200);
  for (size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(tree[i], heap[i]) << "at " << i;
    if (i > 0) EXPECT_GE(tree[i].first, tree[i - 1].first);
  }
}

// --- Write-behind error and spill paths --------------------------------

struct IntLess64 {
  bool operator()(uint64_t a, uint64_t b) const { return a < b; }
};

/// Backend whose writes start failing on demand (same shape as
/// storage_test's) — drives the async flush's sticky-error path.
class FailingBackend final : public StorageBackend {
 public:
  Status ReadPage(uint64_t page, void* buf) override {
    return inner_.ReadPage(page, buf);
  }
  Status WritePage(uint64_t page, const void* buf) override {
    if (fail_writes) return Status::IoError("injected write failure");
    return inner_.WritePage(page, buf);
  }
  uint64_t PageCount() const override { return inner_.PageCount(); }

  bool fail_writes = false;

 private:
  MemoryBackend inner_;
};

// A failing asynchronous flush surfaces as the same sticky StreamWriter
// error (and Finish status code) the synchronous path reports.
TEST(WriteBehind, FailingAsyncFlushMatchesSerialStickyError) {
  const uint64_t per_block = StreamWriter<uint64_t>::kRecordsPerPage;
  auto run = [&](bool write_behind) {
    DiskModel disk(MachineModel::Machine3());
    auto backend = std::make_unique<FailingBackend>();
    FailingBackend* failer = backend.get();
    Pager pager(std::move(backend), &disk, "p");
    WriteBehindContext wb;
    wb.enabled = write_behind;
    StreamWriter<uint64_t> writer(&pager, /*block_pages=*/1, wb);
    failer->fail_writes = true;
    // Three blocks' worth: the failure lands on an async flush and must
    // stick across subsequent appends.
    for (uint64_t i = 0; i < 3 * per_block + 5; ++i) writer.Append(i);
    return writer.Finish().status().code();
  };
  EXPECT_EQ(run(false), StatusCode::kIoError);
  EXPECT_EQ(run(true), StatusCode::kIoError);
}

// Write-behind spill in the external PQ: identical pop order and modeled
// io_seconds to the synchronous spill path.
TEST(WriteBehind, ExternalPqSpillEquivalence) {
  auto run = [&](bool write_behind) {
    DiskModel disk(MachineModel::Machine3());
    auto spill = MakeMemoryPager(&disk, "spill");
    SortConfig config;
    config.write_behind = write_behind;
    ExternalPriorityQueue<uint64_t, IntLess64> pq(
        256 * sizeof(uint64_t), spill.get(), IntLess64(), nullptr,
        PrefetchContext(), config);
    uint64_t state = 99;
    for (int i = 0; i < 5000; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      pq.Push(state >> 32);
    }
    std::vector<uint64_t> popped;
    while (auto v = pq.PopMin()) popped.push_back(*v);
    return std::make_pair(popped, disk.stats().io_seconds);
  };
  const auto sync = run(false);
  const auto async = run(true);
  EXPECT_GT(sync.first.size(), 0u);
  EXPECT_EQ(sync.first, async.first);
  EXPECT_DOUBLE_EQ(sync.second, async.second);
}

}  // namespace
}  // namespace sj
