#include "join/sssj.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

TEST(SSSJ, MatchesBruteForceOnClusteredData) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 1000, 1000);
  const auto a = ClusteredRects(3000, region, 10, 20.0f, 3.0f, 1);
  const auto b = ClusteredRects(2500, region, 10, 20.0f, 3.0f, 2);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);

  CollectingSink sink;
  auto stats = SSSJJoin(da, db, &td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
}

TEST(SSSJ, EmptyInputs) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const DatasetRef empty = MakeDataset(&td, {}, "e", &keep);
  const DatasetRef one =
      MakeDataset(&td, {RectF(0, 0, 1, 1, 7)}, "o", &keep);
  CountingSink sink;
  auto stats = SSSJJoin(empty, one, &td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_count, 0u);
}

TEST(SSSJ, ComputesExtentWhenMissing) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = UniformRects(500, RectF(0, 0, 50, 50), 2.0f, 3);
  const auto b = UniformRects(500, RectF(0, 0, 50, 50), 2.0f, 4);
  DatasetRef da = MakeDataset(&td, a, "a", &keep);
  DatasetRef db = MakeDataset(&td, b, "b", &keep);
  da.extent = RectF::Empty();  // Force the extra extent scan.
  db.extent = RectF::Empty();
  CollectingSink sink;
  auto stats = SSSJJoin(da, db, &td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Sorted(sink.pairs()), BruteForcePairs(a, b));
}

TEST(SSSJ, IoPassStructureMatchesPaper) {
  // "SSSJ performs two sequential read passes, one non-sequential read
  // pass (while merging), and two sequential write passes over the data."
  // Machine 2's two-segment disk cache cannot track the many merge-input
  // runs, so the merge pass is genuinely non-sequential there.
  TestDisk td(MachineModel::Machine2());
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = UniformRects(80000, RectF(0, 0, 1000, 1000), 0.5f, 5);
  const auto b = UniformRects(80000, RectF(0, 0, 1000, 1000), 0.5f, 6);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  td.disk.ResetStats();

  JoinOptions options;
  options.memory_bytes = 1 << 20;  // Small memory so sorting forms many runs.
  CountingSink sink;
  auto stats = SSSJJoin(da, db, &td.disk, options, &sink);
  ASSERT_TRUE(stats.ok());

  const uint64_t data_pages = 2 * ((80000 + 408) / 409);
  // 3 read passes (input, merge, sorted scan), 2 write passes (runs,
  // sorted). Extents are known, so no extra scan.
  EXPECT_NEAR(static_cast<double>(stats->disk.pages_read), 3.0 * data_pages,
              0.1 * data_pages);
  EXPECT_NEAR(static_cast<double>(stats->disk.pages_written),
              2.0 * data_pages, 0.1 * data_pages);
}

TEST(SSSJ, FusedVariantSavesAPassAndAgrees) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = UniformRects(40000, RectF(0, 0, 500, 500), 0.5f, 7);
  const auto b = UniformRects(40000, RectF(0, 0, 500, 500), 0.5f, 8);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);

  JoinOptions options;
  options.memory_bytes = 1 << 20;
  CountingSink plain;
  auto stats_plain = SSSJJoin(da, db, &td.disk, options, &plain);
  ASSERT_TRUE(stats_plain.ok());

  options.fuse_merge_sweep = true;
  CountingSink fused;
  auto stats_fused = SSSJJoin(da, db, &td.disk, options, &fused);
  ASSERT_TRUE(stats_fused.ok());

  EXPECT_EQ(plain.count(), fused.count());
  EXPECT_LT(stats_fused->disk.pages_read, stats_plain->disk.pages_read);
  EXPECT_LT(stats_fused->disk.pages_written, stats_plain->disk.pages_written);
}

TEST(SSSJ, SweepStructureStaysSmall) {
  // The square-root rule: the sweep structure is tiny relative to the
  // input (Table 3's "Sweep Structure" row).
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const auto a = ClusteredRects(50000, RectF(0, 0, 1000, 1000), 40, 10.0f,
                                0.5f, 9);
  const auto b = ClusteredRects(50000, RectF(0, 0, 1000, 1000), 40, 10.0f,
                                0.5f, 10);
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  CountingSink sink;
  auto stats = SSSJJoin(da, db, &td.disk, JoinOptions(), &sink);
  ASSERT_TRUE(stats.ok());
  const size_t input_bytes = (a.size() + b.size()) * sizeof(RectF);
  EXPECT_LT(stats->max_sweep_bytes, input_bytes / 10);
}

}  // namespace
}  // namespace sj
