// The JoinQuery surface itself: builder validation (refine
// misconfiguration is a real error with an actionable message, predicate
// rules, index bounds), the executor registry, Describe() output, and the
// basic semantics of the distance and containment predicates on small
// hand-checkable inputs.

#include <gtest/gtest.h>

#include <sstream>

#include "core/join_query.h"
#include "core/spatial_join.h"

#include "datagen/synthetic.h"
#include "refine/feature_store.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

struct QueryFixture {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  std::vector<RectF> a, b;
  std::vector<Segment> ga, gb;
  DatasetRef da, db;
  std::unique_ptr<Pager> geom_a_pager, geom_b_pager;
  std::optional<FeatureStore> store_a, store_b;

  QueryFixture() {
    const RectF region(0, 0, 60, 60);
    a = UniformRects(200, region, 2.0f, 11);
    b = UniformRects(180, region, 2.5f, 12);
    ga = SegmentsForRects(a);
    gb = SegmentsForRects(b);
    da = MakeDataset(&td, a, "a", &keep);
    db = MakeDataset(&td, b, "b", &keep);
    geom_a_pager = td.NewPager("geom.a");
    geom_b_pager = td.NewPager("geom.b");
    auto sa = FeatureStore::Build(geom_a_pager.get(), ga, "a");
    auto sb = FeatureStore::Build(geom_b_pager.get(), gb, "b");
    SJ_CHECK_OK(sa.status());
    SJ_CHECK_OK(sb.status());
    store_a.emplace(std::move(*sa));
    store_b.emplace(std::move(*sb));
  }
};

// ---------------------------------------------------------------------------
// Satellite: refine misconfiguration is a real error with a clear
// message, for JoinQuery, the legacy Join wrapper, and the k-way path.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Satellite: absurdly small memory budgets used to flow into divisions
// downstream; they are now rejected at compile time with a message
// naming the documented floor, and budgets at the floor run governed.
// ---------------------------------------------------------------------------

TEST(JoinQueryErrors, MemoryBudgetBelowFloorIsRejected) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  for (const size_t bad : {size_t{0}, size_t{1}, kMinMemoryBytes - 1}) {
    CollectingSink sink;
    auto stats = JoinQuery(joiner)
                     .Input(JoinInput::FromStream(f.da))
                     .Input(JoinInput::FromStream(f.db))
                     .MemoryBytes(bad)
                     .Run(&sink);
    ASSERT_FALSE(stats.ok()) << "budget " << bad << " was accepted";
    EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(stats.status().message().find("kMinMemoryBytes"),
              std::string::npos)
        << stats.status().message();
    EXPECT_NE(stats.status().message().find("64 KiB"), std::string::npos)
        << stats.status().message();
    // Explain trips over the same validation.
    auto plan = JoinQuery(joiner)
                    .Input(JoinInput::FromStream(f.da))
                    .Input(JoinInput::FromStream(f.db))
                    .MemoryBytes(bad)
                    .Explain();
    EXPECT_FALSE(plan.ok());
  }
}

TEST(JoinQuery, FloorBudgetRunsGovernedAndWithinBudget) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  const auto expected = testing_util::BruteForcePairs(f.a, f.b);
  for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM}) {
    CollectingSink sink;
    auto stats = JoinQuery(joiner)
                     .Input(JoinInput::FromStream(f.da))
                     .Input(JoinInput::FromStream(f.db))
                     .Algorithm(algo)
                     .MemoryBytes(kMinMemoryBytes)
                     .Run(&sink);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(Sorted(sink.pairs()), expected) << ToString(algo);
    EXPECT_GT(stats->peak_memory_bytes, 0u) << ToString(algo);
    EXPECT_LE(stats->peak_memory_bytes, kMinMemoryBytes) << ToString(algo);
    EXPECT_FALSE(stats->memory_components.empty()) << ToString(algo);
  }
}

TEST(JoinQuery, ExplainReportsTheGrantBreakdown) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  auto plan = JoinQuery(joiner)
                  .Input(JoinInput::FromStream(f.da))
                  .Input(JoinInput::FromStream(f.db))
                  .Explain();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->memory.empty());
  EXPECT_EQ(plan->memory.budget_bytes, JoinOptions().memory_bytes);
  EXPECT_GT(plan->memory.GrantFor(grants::kSortRuns), 0u);
  EXPECT_GT(plan->memory.GrantFor(grants::kSweep), 0u);
  const std::string described = plan->Describe();
  EXPECT_NE(described.find("mem budget"), std::string::npos) << described;
  EXPECT_NE(described.find(grants::kSortRuns), std::string::npos) << described;
}

TEST(JoinQueryErrors, RefineWithoutFeaturesNamesTheInput) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db).WithFeatures(
                       &*f.store_b))
                   .Refine(true)
                   .Run(&sink);
  ASSERT_FALSE(stats.ok());
  const std::string message = stats.status().ToString();
  EXPECT_NE(message.find("refine=true but input #0 has no FeatureStore"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("WithFeatures"), std::string::npos) << message;
}

TEST(JoinQueryErrors, RefineWithoutFeaturesOnSecondInput) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .WithFeatures(0, &*f.store_a)
                   .Refine(true)
                   .Run(&sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().ToString().find("input #1"), std::string::npos)
      << stats.status().ToString();
}

TEST(JoinQueryErrors, MultiwayRefineErrorNamesTheInput) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  CollectingTupleSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(f.da).WithFeatures(
                       &*f.store_a))
                   .Input(JoinInput::FromStream(f.db).WithFeatures(
                       &*f.store_b))
                   .Input(JoinInput::FromStream(f.da))
                   .Refine(true)
                   .Run(&sink);
  ASSERT_FALSE(stats.ok());
  const std::string message = stats.status().ToString();
  EXPECT_NE(message.find("input #2 of the multiway join"), std::string::npos)
      << message;
}

// ---------------------------------------------------------------------------
// Builder validation: predicate rules and index bounds.
// ---------------------------------------------------------------------------

TEST(JoinQueryErrors, ContainsRequiresRefine) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .Predicate(Predicate::kContains)
                   .Run(&sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().ToString().find("Refine(true)"),
            std::string::npos)
      << stats.status().ToString();
}

TEST(JoinQueryErrors, NegativeEpsilonRejected) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .Predicate(Predicate::kDistanceWithin, -1.0)
                   .Run(&sink);
  EXPECT_FALSE(stats.ok());
}

TEST(JoinQueryErrors, MultiwayRejectsNonIntersectionPredicates) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  CollectingTupleSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .Input(JoinInput::FromStream(f.da))
                   .Predicate(Predicate::kDistanceWithin, 1.0)
                   .Run(&sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().ToString().find("kIntersects"), std::string::npos);
}

TEST(JoinQueryErrors, PairwiseRunNeedsExactlyTwoInputs) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  CollectingSink sink;
  auto one = JoinQuery(joiner).Input(JoinInput::FromStream(f.da)).Run(&sink);
  EXPECT_FALSE(one.ok());
  auto three = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .Input(JoinInput::FromStream(f.da))
                   .Run(&sink);
  EXPECT_FALSE(three.ok());
}

TEST(JoinQueryErrors, AttachmentIndicesAreBoundsChecked) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  CollectingSink sink;
  auto bad_features = JoinQuery(joiner)
                          .Input(JoinInput::FromStream(f.da))
                          .Input(JoinInput::FromStream(f.db))
                          .WithFeatures(5, &*f.store_a)
                          .Run(&sink);
  ASSERT_FALSE(bad_features.ok());
  EXPECT_NE(bad_features.status().ToString().find("out of range"),
            std::string::npos);
  GridHistogram hist(RectF(0, 0, 60, 60), 8, 8);
  auto bad_hist = JoinQuery(joiner)
                      .Input(JoinInput::FromStream(f.da))
                      .Input(JoinInput::FromStream(f.db))
                      .WithHistogram(7, &hist)
                      .Run(&sink);
  ASSERT_FALSE(bad_hist.ok());
  EXPECT_NE(bad_hist.status().ToString().find("out of range"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The executor registry.
// ---------------------------------------------------------------------------

TEST(ExecutorRegistry, BuiltInAlgorithmsAreRegistered) {
  for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                             JoinAlgorithm::kST, JoinAlgorithm::kPQ}) {
    const JoinExecutor* executor = FindExecutor(algo);
    ASSERT_NE(executor, nullptr) << ToString(algo);
    EXPECT_EQ(executor->algorithm(), algo);
    EXPECT_STREQ(executor->name(), ToString(algo));
  }
  EXPECT_EQ(FindExecutor(JoinAlgorithm::kAuto), nullptr)
      << "kAuto resolves at plan time and must have no executor";
}

TEST(ExecutorRegistry, StExecutorValidatesInputKinds) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .Algorithm(JoinAlgorithm::kST)
                   .Run(&sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().ToString().find("R-tree"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Describe / operator<<.
// ---------------------------------------------------------------------------

TEST(Describe, StatsAndDecisionRoundTripThroughStreams) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(f.da))
                   .Input(JoinInput::FromStream(f.db))
                   .Algorithm(JoinAlgorithm::kSSSJ)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok());
  std::ostringstream os;
  os << *stats;
  EXPECT_NE(os.str().find("result pairs"), std::string::npos);
  EXPECT_NE(stats->Describe(f.td.disk.machine()).find("modeled"),
            std::string::npos);

  auto decision = JoinQuery(joiner)
                      .Input(JoinInput::FromStream(f.da))
                      .Input(JoinInput::FromStream(f.db))
                      .Explain();
  ASSERT_TRUE(decision.ok());
  std::ostringstream ds;
  ds << *decision;
  EXPECT_NE(ds.str().find("SSSJ"), std::string::npos);

  CollectingTupleSink tuples;
  auto mstats = JoinQuery(joiner)
                    .Input(JoinInput::FromStream(f.da))
                    .Input(JoinInput::FromStream(f.db))
                    .Run(&tuples);
  ASSERT_TRUE(mstats.ok());
  EXPECT_NE(mstats->Describe().find("result tuples"), std::string::npos);
}

TEST(Describe, ExplainDoesNoIoEvenForDistanceQueries) {
  QueryFixture f;
  SpatialJoiner joiner(&f.td.disk, JoinOptions());
  const DiskStats before = f.td.disk.stats();
  auto decision = JoinQuery(joiner)
                      .Input(JoinInput::FromStream(f.da))
                      .Input(JoinInput::FromStream(f.db))
                      .Predicate(Predicate::kDistanceWithin, 1.5)
                      .Explain();
  ASSERT_TRUE(decision.ok());
  const DiskStats after = f.td.disk.stats();
  EXPECT_EQ(after.pages_read, before.pages_read)
      << "EXPLAIN must not run the ε-expansion materialization";
  EXPECT_EQ(after.pages_written, before.pages_written);
}

// ---------------------------------------------------------------------------
// Small hand-checkable predicate semantics (the randomized differential
// harness in join_equivalence_test.cc covers the full matrix).
// ---------------------------------------------------------------------------

TEST(Predicates, DistanceWithinFindsNearButDisjointPairs) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  // Two unit squares 3 apart on x: disjoint, within distance 4, not 2.
  const std::vector<RectF> a = {RectF(0, 0, 1, 1, 0)};
  const std::vector<RectF> b = {RectF(4, 0, 5, 1, 0)};
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  SpatialJoiner joiner(&td.disk, JoinOptions());

  for (double eps : {2.0, 4.0}) {
    CollectingSink sink;
    auto stats = JoinQuery(joiner)
                     .Input(JoinInput::FromStream(da))
                     .Input(JoinInput::FromStream(db))
                     .Predicate(Predicate::kDistanceWithin, eps)
                     .Algorithm(JoinAlgorithm::kSSSJ)
                     .Run(&sink);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(sink.pairs().size(), eps >= 3.0 ? 1u : 0u) << "eps=" << eps;
  }
  // Plain intersection finds nothing.
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(da))
                   .Input(JoinInput::FromStream(db))
                   .Algorithm(JoinAlgorithm::kSSSJ)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(sink.pairs().empty());
}

TEST(Predicates, ContainsKeepsOnlyTrueSubSegments) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  // a0: segment (0,0)-(8,8). b0: its sub-segment (2,2)-(6,6); b1 merely
  // crosses it; b2 is disjoint.
  const std::vector<Segment> ga = {Segment(0, 0, 8, 8)};
  const std::vector<Segment> gb = {Segment(2, 2, 6, 6), Segment(0, 4, 4, 0),
                                   Segment(20, 20, 24, 24)};
  std::vector<RectF> a, b;
  for (size_t i = 0; i < ga.size(); ++i) {
    a.push_back(ga[i].Mbr(static_cast<ObjectId>(i)));
  }
  for (size_t j = 0; j < gb.size(); ++j) {
    b.push_back(gb[j].Mbr(static_cast<ObjectId>(j)));
  }
  const DatasetRef da = MakeDataset(&td, a, "a", &keep);
  const DatasetRef db = MakeDataset(&td, b, "b", &keep);
  auto pa = td.NewPager("geom.a");
  auto pb = td.NewPager("geom.b");
  auto store_a = FeatureStore::Build(pa.get(), ga, "a");
  auto store_b = FeatureStore::Build(pb.get(), gb, "b");
  ASSERT_TRUE(store_a.ok() && store_b.ok());

  SpatialJoiner joiner(&td.disk, JoinOptions());
  CollectingSink sink;
  auto stats = JoinQuery(joiner)
                   .Input(JoinInput::FromStream(da))
                   .Input(JoinInput::FromStream(db))
                   .WithFeatures(0, &*store_a)
                   .WithFeatures(1, &*store_b)
                   .Predicate(Predicate::kContains)
                   .Refine(true)
                   .Algorithm(JoinAlgorithm::kSSSJ)
                   .Run(&sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const std::vector<IdPair> expected = {{0, 0}};
  EXPECT_EQ(Sorted(sink.pairs()), expected);
  EXPECT_EQ(stats->candidate_count, 2u) << "b0 and b1 overlap a0's MBR";
}

}  // namespace
}  // namespace sj
