#include "histogram/grid_histogram.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::MakeDataset;
using testing_util::TestDisk;

TEST(GridHistogram, CountsOverlappingCells) {
  GridHistogram hist(RectF(0, 0, 10, 10), 10, 10);
  hist.Add(RectF(0.5f, 0.5f, 0.6f, 0.6f));   // One cell.
  hist.Add(RectF(0.0f, 0.0f, 2.5f, 0.5f));   // Cells x 0..2, y 0.
  EXPECT_EQ(hist.CellCount(0, 0), 2u);
  EXPECT_EQ(hist.CellCount(1, 0), 1u);
  EXPECT_EQ(hist.CellCount(2, 0), 1u);
  EXPECT_EQ(hist.CellCount(3, 0), 0u);
  EXPECT_EQ(hist.total(), 2u);
}

TEST(GridHistogram, MightIntersectIsConservative) {
  GridHistogram hist(RectF(0, 0, 100, 100), 20, 20);
  hist.Add(RectF(10, 10, 12, 12));
  // Same cell region: must report possible.
  EXPECT_TRUE(hist.MightIntersect(RectF(11, 11, 11.5f, 11.5f)));
  // Same cell but not overlapping the object: still "might" (conservative).
  EXPECT_TRUE(hist.MightIntersect(RectF(13, 13, 14, 14)));
  // Far away: definitively no.
  EXPECT_FALSE(hist.MightIntersect(RectF(80, 80, 90, 90)));
  // Outside the extent entirely.
  EXPECT_FALSE(hist.MightIntersect(RectF(200, 200, 300, 300)));
}

TEST(GridHistogram, EmptyHistogramIntersectsNothing) {
  GridHistogram hist(RectF(0, 0, 10, 10), 4, 4);
  EXPECT_FALSE(hist.MightIntersect(RectF(1, 1, 2, 2)));
  EXPECT_EQ(hist.EstimateJoinFraction(hist), 0.0);
}

TEST(GridHistogram, JoinFractionBounds) {
  const RectF extent(0, 0, 100, 100);
  GridHistogram left(extent, 10, 10);
  GridHistogram right(extent, 10, 10);
  for (const RectF& r : UniformRects(500, extent, 1.0f, 1)) left.Add(r);
  for (const RectF& r : UniformRects(500, extent, 1.0f, 2)) right.Add(r);
  const double f = left.EstimateJoinFraction(right);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  // Uniform data overlaps nearly everywhere.
  EXPECT_GT(f, 0.8);
}

TEST(GridHistogram, DisjointDataGivesZeroFraction) {
  const RectF extent(0, 0, 100, 100);
  GridHistogram left(extent, 10, 10);
  GridHistogram right(extent, 10, 10);
  for (const RectF& r : UniformRects(200, RectF(0, 0, 30, 30), 0.5f, 3)) {
    left.Add(r);
  }
  for (const RectF& r : UniformRects(200, RectF(60, 60, 95, 95), 0.5f, 4)) {
    right.Add(r);
  }
  EXPECT_EQ(left.EstimateJoinFraction(right), 0.0);
}

TEST(GridHistogram, LocalizedJoinFractionIsSmall) {
  // The paper's motivating case (§6.3): Minnesota hydro vs US roads.
  const RectF us(0, 0, 100, 100);
  GridHistogram roads(us, 20, 20);
  GridHistogram hydro(us, 20, 20);
  for (const RectF& r : UniformRects(2000, us, 0.5f, 5)) roads.Add(r);
  for (const RectF& r : UniformRects(200, RectF(10, 10, 20, 20), 0.5f, 6)) {
    hydro.Add(r);
  }
  // Only a small fraction of the roads participate.
  EXPECT_LT(roads.EstimateJoinFraction(hydro), 0.1);
  // But all of the hydro does.
  EXPECT_GT(hydro.EstimateJoinFraction(roads), 0.9);
}

TEST(GridHistogram, BuildFromStream) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF extent(0, 0, 50, 50);
  const auto rects = UniformRects(800, extent, 1.0f, 7);
  const DatasetRef ref = MakeDataset(&td, rects, "h", &keep);
  auto hist = GridHistogram::Build(ref.range, extent, 8, 8);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->total(), 800u);
  // In-memory construction agrees.
  GridHistogram direct(extent, 8, 8);
  for (const RectF& r : rects) direct.Add(r);
  for (uint32_t y = 0; y < 8; ++y) {
    for (uint32_t x = 0; x < 8; ++x) {
      EXPECT_EQ(hist->CellCount(x, y), direct.CellCount(x, y));
    }
  }
}

TEST(GridHistogram, DegenerateExtent) {
  GridHistogram hist(RectF(5, 5, 5, 5), 16, 16);
  hist.Add(RectF(5, 5, 5, 5));
  EXPECT_TRUE(hist.MightIntersect(RectF(5, 5, 5, 5)));
  EXPECT_EQ(hist.total(), 1u);
}

}  // namespace
}  // namespace sj
