#include "histogram/grid_histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::MakeDataset;
using testing_util::TestDisk;

TEST(GridHistogram, CountsOverlappingCells) {
  GridHistogram hist(RectF(0, 0, 10, 10), 10, 10);
  hist.Add(RectF(0.5f, 0.5f, 0.6f, 0.6f));   // One cell.
  hist.Add(RectF(0.0f, 0.0f, 2.5f, 0.5f));   // Cells x 0..2, y 0.
  EXPECT_EQ(hist.CellCount(0, 0), 2u);
  EXPECT_EQ(hist.CellCount(1, 0), 1u);
  EXPECT_EQ(hist.CellCount(2, 0), 1u);
  EXPECT_EQ(hist.CellCount(3, 0), 0u);
  EXPECT_EQ(hist.total(), 2u);
}

TEST(GridHistogram, MightIntersectIsConservative) {
  GridHistogram hist(RectF(0, 0, 100, 100), 20, 20);
  hist.Add(RectF(10, 10, 12, 12));
  // Same cell region: must report possible.
  EXPECT_TRUE(hist.MightIntersect(RectF(11, 11, 11.5f, 11.5f)));
  // Same cell but not overlapping the object: still "might" (conservative).
  EXPECT_TRUE(hist.MightIntersect(RectF(13, 13, 14, 14)));
  // Far away: definitively no.
  EXPECT_FALSE(hist.MightIntersect(RectF(80, 80, 90, 90)));
  // Outside the extent entirely.
  EXPECT_FALSE(hist.MightIntersect(RectF(200, 200, 300, 300)));
}

TEST(GridHistogram, EmptyHistogramIntersectsNothing) {
  GridHistogram hist(RectF(0, 0, 10, 10), 4, 4);
  EXPECT_FALSE(hist.MightIntersect(RectF(1, 1, 2, 2)));
  EXPECT_EQ(hist.EstimateJoinFraction(hist), 0.0);
}

TEST(GridHistogram, JoinFractionBounds) {
  const RectF extent(0, 0, 100, 100);
  GridHistogram left(extent, 10, 10);
  GridHistogram right(extent, 10, 10);
  for (const RectF& r : UniformRects(500, extent, 1.0f, 1)) left.Add(r);
  for (const RectF& r : UniformRects(500, extent, 1.0f, 2)) right.Add(r);
  const double f = left.EstimateJoinFraction(right);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  // Uniform data overlaps nearly everywhere.
  EXPECT_GT(f, 0.8);
}

TEST(GridHistogram, DisjointDataGivesZeroFraction) {
  const RectF extent(0, 0, 100, 100);
  GridHistogram left(extent, 10, 10);
  GridHistogram right(extent, 10, 10);
  for (const RectF& r : UniformRects(200, RectF(0, 0, 30, 30), 0.5f, 3)) {
    left.Add(r);
  }
  for (const RectF& r : UniformRects(200, RectF(60, 60, 95, 95), 0.5f, 4)) {
    right.Add(r);
  }
  EXPECT_EQ(left.EstimateJoinFraction(right), 0.0);
}

TEST(GridHistogram, LocalizedJoinFractionIsSmall) {
  // The paper's motivating case (§6.3): Minnesota hydro vs US roads.
  const RectF us(0, 0, 100, 100);
  GridHistogram roads(us, 20, 20);
  GridHistogram hydro(us, 20, 20);
  for (const RectF& r : UniformRects(2000, us, 0.5f, 5)) roads.Add(r);
  for (const RectF& r : UniformRects(200, RectF(10, 10, 20, 20), 0.5f, 6)) {
    hydro.Add(r);
  }
  // Only a small fraction of the roads participate.
  EXPECT_LT(roads.EstimateJoinFraction(hydro), 0.1);
  // But all of the hydro does.
  EXPECT_GT(hydro.EstimateJoinFraction(roads), 0.9);
}

TEST(GridHistogram, BuildFromStream) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF extent(0, 0, 50, 50);
  const auto rects = UniformRects(800, extent, 1.0f, 7);
  const DatasetRef ref = MakeDataset(&td, rects, "h", &keep);
  auto hist = GridHistogram::Build(ref.range, extent, 8, 8);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->total(), 800u);
  // In-memory construction agrees.
  GridHistogram direct(extent, 8, 8);
  for (const RectF& r : rects) direct.Add(r);
  for (uint32_t y = 0; y < 8; ++y) {
    for (uint32_t x = 0; x < 8; ++x) {
      EXPECT_EQ(hist->CellCount(x, y), direct.CellCount(x, y));
    }
  }
}

TEST(GridHistogram, DegenerateExtent) {
  GridHistogram hist(RectF(5, 5, 5, 5), 16, 16);
  hist.Add(RectF(5, 5, 5, 5));
  EXPECT_TRUE(hist.MightIntersect(RectF(5, 5, 5, 5)));
  EXPECT_EQ(hist.total(), 1u);
}

TEST(GridHistogram, EstimateCountInTracksRegionMass) {
  const RectF extent(0, 0, 100, 100);
  GridHistogram hist(extent, 32, 32);
  // 1000 points in the lower-left quadrant, 200 in the upper-right.
  const auto lower = UniformRects(1000, RectF(0, 0, 49, 49), 0.0f, 21);
  const auto upper = UniformRects(200, RectF(51, 51, 100, 100), 0.0f, 22);
  for (const RectF& r : lower) hist.Add(r);
  for (const RectF& r : upper) hist.Add(r);

  EXPECT_NEAR(hist.EstimateCountIn(RectF(0, 0, 50, 50)), 1000.0, 60.0);
  EXPECT_NEAR(hist.EstimateCountIn(RectF(50, 50, 100, 100)), 200.0, 30.0);
  EXPECT_EQ(hist.EstimateCountIn(RectF(200, 0, 300, 100)), 0.0);
  // Whole extent recovers the total (points overlap one cell each, so
  // there is no replication inflation).
  EXPECT_NEAR(hist.EstimateCountIn(extent), 1200.0, 1.0);
  // Sub-cell queries degrade to the uniform-within-cell assumption: four
  // disjoint quadrants of one cell sum to the cell's own estimate.
  const RectF cell(0, 0, 100.0f / 32, 100.0f / 32);
  const float mx = 0.5f * (cell.xlo + cell.xhi);
  const float my = 0.5f * (cell.ylo + cell.yhi);
  const double whole = hist.EstimateCountIn(cell);
  const double quads = hist.EstimateCountIn(RectF(cell.xlo, cell.ylo, mx, my)) +
                       hist.EstimateCountIn(RectF(mx, cell.ylo, cell.xhi, my)) +
                       hist.EstimateCountIn(RectF(cell.xlo, my, mx, cell.yhi)) +
                       hist.EstimateCountIn(RectF(mx, my, cell.xhi, cell.yhi));
  EXPECT_NEAR(quads, whole, 1e-6 * (1.0 + whole));
}

TEST(GridHistogram, EstimateCountInDegenerateQueriesAreZeroMass) {
  const RectF extent(0, 0, 100, 100);
  GridHistogram hist(extent, 16, 16);
  for (const RectF& r : UniformRects(500, extent, 1.0f, 31)) hist.Add(r);

  // Zero-area queries (points, horizontal/vertical segments) carry zero
  // mass under the fractional-area model: exactly 0, never NaN or
  // negative — including degenerate rects on the extent boundary.
  EXPECT_EQ(hist.EstimateCountIn(RectF(50, 50, 50, 50)), 0.0);
  EXPECT_EQ(hist.EstimateCountIn(RectF(10, 20, 90, 20)), 0.0);
  EXPECT_EQ(hist.EstimateCountIn(RectF(30, 10, 30, 95)), 0.0);
  EXPECT_EQ(hist.EstimateCountIn(RectF(0, 0, 0, 100)), 0.0);

  // Inverted / NaN / Empty rectangles are invalid: 0, not garbage.
  EXPECT_EQ(hist.EstimateCountIn(RectF(60, 60, 40, 40)), 0.0);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(hist.EstimateCountIn(RectF(nan, 0, 10, 10)), 0.0);
  EXPECT_EQ(hist.EstimateCountIn(RectF::Empty()), 0.0);
}

TEST(GridHistogram, EstimateCountInOutsideAndOversizedQueries) {
  const RectF extent(0, 0, 100, 100);
  GridHistogram hist(extent, 16, 16);
  for (const RectF& r : UniformRects(500, extent, 1.0f, 32)) hist.Add(r);

  // Fully outside the extent on any side: exactly 0.
  EXPECT_EQ(hist.EstimateCountIn(RectF(150, 150, 200, 200)), 0.0);
  EXPECT_EQ(hist.EstimateCountIn(RectF(-50, 0, -10, 100)), 0.0);
  EXPECT_EQ(hist.EstimateCountIn(RectF(0, 101, 100, 200)), 0.0);

  // Far-oversized and infinite queries clamp to the grid instead of
  // overflowing the cell-index cast; the estimate stays finite,
  // non-negative, and equal to the whole-extent mass.
  const double all = hist.EstimateCountIn(extent);
  const float inf = std::numeric_limits<float>::infinity();
  const double from_inf = hist.EstimateCountIn(RectF(-inf, -inf, inf, inf));
  EXPECT_TRUE(std::isfinite(from_inf));
  EXPECT_NEAR(from_inf, all, 1e-9 * (1.0 + all));
  const double from_big =
      hist.EstimateCountIn(RectF(-1e30f, -1e30f, 1e30f, 1e30f));
  EXPECT_TRUE(std::isfinite(from_big));
  EXPECT_NEAR(from_big, all, 1e-9 * (1.0 + all));

  // The same clamping protects the conservative pruning test.
  EXPECT_TRUE(hist.MightIntersect(RectF(-inf, -inf, inf, inf)));
}

TEST(GridHistogram, AverageCellsPerObjectMeasuresReplication) {
  const RectF extent(0, 0, 100, 100);
  GridHistogram points(extent, 10, 10);
  points.Add(RectF(5, 5, 5, 5));
  points.Add(RectF(15, 15, 15, 15));
  EXPECT_DOUBLE_EQ(points.AverageCellsPerObject(), 1.0);

  GridHistogram wide(extent, 10, 10);
  wide.Add(RectF(0, 0, 100, 5));  // Spans the full row of 10 cells.
  EXPECT_DOUBLE_EQ(wide.AverageCellsPerObject(), 10.0);

  EXPECT_DOUBLE_EQ(GridHistogram(extent, 10, 10).AverageCellsPerObject(), 1.0);
}

TEST(GridHistogram, BuildSampledApproximatesTheFullBuild) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF extent(0, 0, 100, 100);
  // Dense corner + uniform background over many stream blocks (> 4
  // blocks so sampling actually skips some).
  auto rects = UniformRects(80000, RectF(0, 0, 20, 20), 0.5f, 23);
  const auto rest = UniformRects(40000, extent, 0.5f, 24, 80000);
  rects.insert(rects.end(), rest.begin(), rest.end());
  const DatasetRef ref = MakeDataset(&td, rects, "s", &keep);

  td.disk.ResetStats();
  auto full = GridHistogram::Build(ref.range, extent, 16, 16);
  ASSERT_TRUE(full.ok());
  const uint64_t full_pages = td.disk.stats().pages_read;
  td.disk.ResetStats();
  auto sampled = GridHistogram::BuildSampled(ref.range, extent, 16, 16, 4);
  ASSERT_TRUE(sampled.ok());
  const uint64_t sampled_pages = td.disk.stats().pages_read;

  // The sampled pass reads a fraction of the stream but is rescaled to
  // the exact total; relative densities stay close.
  EXPECT_LT(sampled_pages, full_pages / 2);
  EXPECT_EQ(sampled->total(), full->total());
  const double full_corner = full->EstimateCountIn(RectF(0, 0, 20, 20));
  const double sampled_corner = sampled->EstimateCountIn(RectF(0, 0, 20, 20));
  EXPECT_NEAR(sampled_corner / full_corner, 1.0, 0.15);

  // sample_one_in = 1 is exactly Build().
  auto unsampled = GridHistogram::BuildSampled(ref.range, extent, 16, 16, 1);
  ASSERT_TRUE(unsampled.ok());
  for (uint32_t y = 0; y < 16; ++y) {
    for (uint32_t x = 0; x < 16; ++x) {
      EXPECT_EQ(unsampled->CellCount(x, y), full->CellCount(x, y));
    }
  }
}

}  // namespace
}  // namespace sj
