#include "sweep/interval_structures.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "datagen/synthetic.h"
#include "sweep/sweep_join.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::Sorted;

/// Runs the sweep join over in-memory vectors with the given structure.
template <typename Structure>
std::vector<IdPair> SweepPairs(std::vector<RectF> a, std::vector<RectF> b,
                               const RectF& extent, uint32_t strips) {
  std::sort(a.begin(), a.end(), OrderByYLo());
  std::sort(b.begin(), b.end(), OrderByYLo());
  VectorRectSource sa(&a), sb(&b);
  Structure active_a(extent, strips), active_b(extent, strips);
  std::vector<IdPair> out;
  SweepJoinRun(sa, sb, active_a, active_b,
               [&out](const RectF& x, const RectF& y) {
                 out.push_back({x.id, y.id});
               },
               [] {});
  return Sorted(std::move(out));
}

struct SweepCase {
  uint64_t na, nb;
  float size_a, size_b;
  uint32_t strips;
  uint64_t seed;
};

class SweepStructureEquivalence : public ::testing::TestWithParam<SweepCase> {
};

TEST_P(SweepStructureEquivalence, BothStructuresMatchBruteForce) {
  const SweepCase c = GetParam();
  const RectF region(0, 0, 200, 200);
  const auto a = UniformRects(c.na, region, c.size_a, c.seed);
  const auto b = UniformRects(c.nb, region, c.size_b, c.seed + 1);
  const auto expected = BruteForcePairs(a, b);
  EXPECT_EQ(SweepPairs<ForwardSweep>(a, b, region, c.strips), expected);
  EXPECT_EQ(SweepPairs<StripedSweep>(a, b, region, c.strips), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SweepStructureEquivalence,
    ::testing::Values(SweepCase{0, 0, 1, 1, 16, 1},
                      SweepCase{1, 1, 200, 200, 16, 2},  // Full overlap.
                      SweepCase{100, 0, 1, 1, 16, 3},    // One side empty.
                      SweepCase{500, 400, 2, 3, 1, 4},   // Single strip.
                      SweepCase{500, 400, 2, 3, 1024, 5},
                      SweepCase{300, 300, 50, 0.5, 64, 6},  // Wide rects.
                      SweepCase{1000, 1000, 0, 0, 128, 7},  // Points.
                      SweepCase{800, 700, 5, 5, 16, 8}));

TEST(StripedSweep, DedupAcrossStrips) {
  // Two rectangles spanning many strips still produce exactly one pair.
  const RectF region(0, 0, 100, 100);
  std::vector<RectF> a = {RectF(1, 10, 99, 12, 1)};
  std::vector<RectF> b = {RectF(2, 11, 95, 13, 2)};
  const auto pairs = SweepPairs<StripedSweep>(a, b, region, 64);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (IdPair{1, 2}));
}

TEST(StripedSweep, ClampsCoordinatesOutsideExtent) {
  const RectF region(0, 0, 10, 10);
  std::vector<RectF> a = {RectF(-50, 0, -40, 5, 1)};  // Entirely left.
  std::vector<RectF> b = {RectF(-45, 1, -42, 4, 2)};
  const auto pairs = SweepPairs<StripedSweep>(a, b, region, 8);
  ASSERT_EQ(pairs.size(), 1u);  // Found in the clamped boundary strip.
}

TEST(ForwardSweep, ExpiryRemovesPassedRectangles) {
  ForwardSweep sweep;
  sweep.Insert(RectF(0, 0, 1, 1, 1));   // Dies at y=1.
  sweep.Insert(RectF(0, 0, 1, 10, 2));  // Survives.
  int hits = 0;
  sweep.QueryAndExpire(RectF(0, 5, 1, 6, 99),
                       [&](const RectF&) { hits++; });
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sweep.ActiveCount(), 1u);
}

TEST(ForwardSweep, RectEndingExactlyAtSweepLineStillActive) {
  // Closed rectangles: yhi == q.ylo still intersects.
  ForwardSweep sweep;
  sweep.Insert(RectF(0, 0, 1, 5, 1));
  int hits = 0;
  sweep.QueryAndExpire(RectF(0, 5, 1, 6, 2), [&](const RectF&) { hits++; });
  EXPECT_EQ(hits, 1);
}

TEST(StripedSweep, MemoryAccountingTracksCopies) {
  const RectF region(0, 0, 100, 100);
  StripedSweep sweep(region, 10);  // Strip width 10.
  sweep.Insert(RectF(0, 0, 100, 1, 1));  // All 10 strips.
  EXPECT_EQ(sweep.ActiveCount(), 10u);
  EXPECT_EQ(sweep.MemoryBytes(), 10 * sizeof(RectF));
  sweep.Insert(RectF(5, 0, 6, 1, 2));  // One strip.
  EXPECT_EQ(sweep.ActiveCount(), 11u);
}

TEST(StripedSweep, DegenerateExtentFallsBackToOneStrip) {
  const RectF region(5, 0, 5, 10);  // Zero-width.
  StripedSweep sweep(region, 100);
  sweep.Insert(RectF(5, 0, 5, 10, 1));
  int hits = 0;
  sweep.QueryAndExpire(RectF(5, 1, 5, 2, 2), [&](const RectF&) { hits++; });
  EXPECT_EQ(hits, 1);
}

TEST(StripedSweep, AmortizedPurgeBoundsStaleEntries) {
  // Insert many short-lived rects in strip 0 while querying only strip 9:
  // the amortized purge must keep the structure from growing without
  // bound.
  const RectF region(0, 0, 100, 100);
  StripedSweep sweep(region, 10);
  for (int i = 0; i < 10000; ++i) {
    const float y = static_cast<float>(i) * 0.01f;
    sweep.Insert(RectF(1, y, 2, y + 0.005f, static_cast<ObjectId>(i)));
  }
  // All but the most recent handful have expired at y=100.
  sweep.Insert(RectF(95, 100, 96, 100, 999999));
  EXPECT_LT(sweep.ActiveCount(), 5000u);
}

TEST(StripedSweep, HugeExtentKeepsStriping) {
  // Regression: a float-sized extent used to overflow (xhi - xlo) to inf
  // in float, making every strip index 0 — silent Forward-Sweep
  // behaviour. The width is now computed in double, so striping survives
  // the full float range.
  const RectF region(-3e38f, 0, 3e38f, 10);
  StripedSweep sweep(region, 16);
  EXPECT_FALSE(sweep.StripsCollapsed());
  EXPECT_EQ(sweep.strips(), 16u);
  // A rectangle spanning the whole extent must land in every strip; with
  // the overflowed width it landed only in strip 0.
  sweep.Insert(RectF(-3e38f, 0, 3e38f, 10, 1));
  EXPECT_EQ(sweep.ActiveCount(), 16u);
  // And the join over such an extent is still correct.
  std::vector<RectF> a = {RectF(-3e38f, 1, -2e38f, 3, 1),
                          RectF(2e38f, 1, 3e38f, 3, 2)};
  std::vector<RectF> b = {RectF(-2.5e38f, 2, -1e38f, 4, 3),
                          RectF(1e38f, 2, 2.5e38f, 4, 4)};
  EXPECT_EQ(SweepPairs<StripedSweep>(a, b, region, 16),
            BruteForcePairs(a, b));
}

TEST(StripedSweep, NonFiniteExtentCollapsesWithSignal) {
  const float inf = std::numeric_limits<float>::infinity();
  StripedSweep sweep(RectF(-inf, 0, inf, 10), 64);
  EXPECT_TRUE(sweep.StripsCollapsed());
  EXPECT_EQ(sweep.strips(), 1u);
  // Collapsed means Forward-Sweep behaviour, not wrong answers.
  sweep.Insert(RectF(10, 0, 20, 10, 1));
  int hits = 0;
  sweep.QueryAndExpire(RectF(15, 1, 25, 2, 2), [&](const RectF&) { hits++; });
  EXPECT_EQ(hits, 1);
}

TEST(StripedSweep, DegenerateExtentReportsCollapse) {
  EXPECT_TRUE(StripedSweep(RectF(5, 0, 5, 10), 100).StripsCollapsed());
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(StripedSweep(RectF(nan, 0, nan, 10), 8).StripsCollapsed());
  // Inverted x extent is degenerate too.
  EXPECT_TRUE(StripedSweep(RectF(10, 0, 0, 10), 8).StripsCollapsed());
  // A single requested strip is exactly what a degenerate extent degrades
  // to — nothing was lost, so no collapse is flagged.
  EXPECT_FALSE(StripedSweep(RectF(5, 0, 5, 10), 1).StripsCollapsed());
  EXPECT_FALSE(StripedSweep(RectF(0, 0, 10, 10), 8).StripsCollapsed());
}

TEST(SweepJoin, RunStatsSurfaceStripCollapse) {
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<RectF> a = {RectF(0, 0, 1, 1, 1)};
  std::vector<RectF> b = {RectF(0, 0, 1, 1, 2)};
  VectorRectSource sa(&a), sb(&b);
  {
    StripedSweep active_a(RectF(-inf, 0, inf, 1), 64);
    StripedSweep active_b(RectF(-inf, 0, inf, 1), 64);
    const SweepRunStats stats = SweepJoinRun(
        sa, sb, active_a, active_b, [](const RectF&, const RectF&) {}, [] {});
    EXPECT_TRUE(stats.strips_collapsed);
  }
  VectorRectSource sa2(&a), sb2(&b);
  {
    StripedSweep active_a(RectF(0, 0, 10, 1), 64);
    StripedSweep active_b(RectF(0, 0, 10, 1), 64);
    const SweepRunStats stats = SweepJoinRun(
        sa2, sb2, active_a, active_b, [](const RectF&, const RectF&) {},
        [] {});
    EXPECT_FALSE(stats.strips_collapsed);
  }
}

TEST(StripedSweep, NaNCoordinatesAreDeterministic) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const RectF region(0, 0, 100, 100);
  StripedSweep sweep(region, 8);
  // NaN x lands deterministically in strip 0 (clamp-before-cast; the raw
  // float-to-uint32 cast was UB).
  sweep.Insert(RectF(nan, 0, nan, 100, 1));
  EXPECT_EQ(sweep.ActiveCount(), 1u);
  int hits = 0;
  sweep.QueryAndExpire(RectF(0, 1, 100, 2, 2), [&](const RectF&) { hits++; });
  // A NaN x endpoint never matches (IEEE comparisons are false), exactly
  // the scalar semantics.
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(sweep.ActiveCount(), 1u);  // NaN never expires either (yhi ok).
  // NaN query coordinates are deterministic too: strip 0, no matches.
  sweep.QueryAndExpire(RectF(nan, 1, nan, 2, 3), [&](const RectF&) { hits++; });
  EXPECT_EQ(hits, 0);
}

TEST(ForwardSweep, EmittedRectsAreStableValuesDuringCompaction) {
  // Regression: QueryAndExpire used to emit a reference into the vector
  // it was compacting in the same loop; storing the emitted rects while
  // expiry shifts lanes must observe the correct values.
  ForwardSweep sweep;
  std::vector<RectF> expect;
  for (int i = 0; i < 32; ++i) {
    if (i % 2 == 0) {
      // Expired by the query below, forcing compaction shifts ahead of
      // every live lane.
      sweep.Insert(RectF(0, 0, 1, 1, static_cast<ObjectId>(1000 + i)));
    } else {
      const RectF r(static_cast<float>(i), 0, static_cast<float>(i) + 0.5f,
                    50, static_cast<ObjectId>(i));
      sweep.Insert(r);
      expect.push_back(r);
    }
  }
  std::vector<RectF> got;
  sweep.QueryAndExpire(RectF(0, 10, 40, 11, 999),
                       [&](const RectF& r) { got.push_back(r); });
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expect[i].id);
    EXPECT_EQ(got[i].xlo, expect[i].xlo);
    EXPECT_EQ(got[i].ylo, expect[i].ylo);
    EXPECT_EQ(got[i].xhi, expect[i].xhi);
    EXPECT_EQ(got[i].yhi, expect[i].yhi);
  }
}

TEST(ForwardSweep, AmortizedPurgeBoundsOneSidedPileUp) {
  // A long stretch of input from one relation only: no queries run
  // against this structure, so only the amortized self-purge keeps
  // passed rectangles from piling up. Each rect here is dead before the
  // next insert, so the bound is the purge threshold itself
  // (~2*live + 128), far below the 100k inserted.
  ForwardSweep sweep;
  for (int i = 0; i < 100000; ++i) {
    const float y = static_cast<float>(i) * 0.01f;
    sweep.Insert(RectF(0, y, 1, y + 0.005f, static_cast<ObjectId>(i)));
  }
  EXPECT_LT(sweep.ActiveCount(), 300u);
  EXPECT_LT(sweep.MemoryBytes(), 300u * sizeof(RectF));
}

TEST(StripedSweep, AmortizedPurgeBoundsOneSidedPileUp) {
  const RectF region(0, 0, 100, 1000);
  StripedSweep sweep(region, 10);
  for (int i = 0; i < 100000; ++i) {
    const float y = static_cast<float>(i) * 0.01f;
    sweep.Insert(RectF(1, y, 2, y + 0.005f, static_cast<ObjectId>(i)));
  }
  EXPECT_LT(sweep.ActiveCount(), 300u);
  EXPECT_LT(sweep.MemoryBytes(), 300u * sizeof(RectF));
}

TEST(SweepJoin, TracksMaxStructureSize) {
  const RectF region(0, 0, 100, 100);
  auto a = UniformRects(500, region, 3.0f, 31);
  auto b = UniformRects(500, region, 3.0f, 32);
  std::sort(a.begin(), a.end(), OrderByYLo());
  std::sort(b.begin(), b.end(), OrderByYLo());
  VectorRectSource sa(&a), sb(&b);
  StripedSweep active_a(region, 16), active_b(region, 16);
  const SweepRunStats stats = SweepJoinRun(
      sa, sb, active_a, active_b, [](const RectF&, const RectF&) {}, [] {});
  EXPECT_GT(stats.max_structure_bytes, 0u);
  EXPECT_GT(stats.max_active, 0u);
  EXPECT_EQ(stats.output_count, BruteForcePairs(a, b).size());
}

}  // namespace
}  // namespace sj
