#include "sweep/interval_structures.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/synthetic.h"
#include "sweep/sweep_join.h"
#include "test_util.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::Sorted;

/// Runs the sweep join over in-memory vectors with the given structure.
template <typename Structure>
std::vector<IdPair> SweepPairs(std::vector<RectF> a, std::vector<RectF> b,
                               const RectF& extent, uint32_t strips) {
  std::sort(a.begin(), a.end(), OrderByYLo());
  std::sort(b.begin(), b.end(), OrderByYLo());
  VectorRectSource sa(&a), sb(&b);
  Structure active_a(extent, strips), active_b(extent, strips);
  std::vector<IdPair> out;
  SweepJoinRun(sa, sb, active_a, active_b,
               [&out](const RectF& x, const RectF& y) {
                 out.push_back({x.id, y.id});
               },
               [] {});
  return Sorted(std::move(out));
}

struct SweepCase {
  uint64_t na, nb;
  float size_a, size_b;
  uint32_t strips;
  uint64_t seed;
};

class SweepStructureEquivalence : public ::testing::TestWithParam<SweepCase> {
};

TEST_P(SweepStructureEquivalence, BothStructuresMatchBruteForce) {
  const SweepCase c = GetParam();
  const RectF region(0, 0, 200, 200);
  const auto a = UniformRects(c.na, region, c.size_a, c.seed);
  const auto b = UniformRects(c.nb, region, c.size_b, c.seed + 1);
  const auto expected = BruteForcePairs(a, b);
  EXPECT_EQ(SweepPairs<ForwardSweep>(a, b, region, c.strips), expected);
  EXPECT_EQ(SweepPairs<StripedSweep>(a, b, region, c.strips), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SweepStructureEquivalence,
    ::testing::Values(SweepCase{0, 0, 1, 1, 16, 1},
                      SweepCase{1, 1, 200, 200, 16, 2},  // Full overlap.
                      SweepCase{100, 0, 1, 1, 16, 3},    // One side empty.
                      SweepCase{500, 400, 2, 3, 1, 4},   // Single strip.
                      SweepCase{500, 400, 2, 3, 1024, 5},
                      SweepCase{300, 300, 50, 0.5, 64, 6},  // Wide rects.
                      SweepCase{1000, 1000, 0, 0, 128, 7},  // Points.
                      SweepCase{800, 700, 5, 5, 16, 8}));

TEST(StripedSweep, DedupAcrossStrips) {
  // Two rectangles spanning many strips still produce exactly one pair.
  const RectF region(0, 0, 100, 100);
  std::vector<RectF> a = {RectF(1, 10, 99, 12, 1)};
  std::vector<RectF> b = {RectF(2, 11, 95, 13, 2)};
  const auto pairs = SweepPairs<StripedSweep>(a, b, region, 64);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (IdPair{1, 2}));
}

TEST(StripedSweep, ClampsCoordinatesOutsideExtent) {
  const RectF region(0, 0, 10, 10);
  std::vector<RectF> a = {RectF(-50, 0, -40, 5, 1)};  // Entirely left.
  std::vector<RectF> b = {RectF(-45, 1, -42, 4, 2)};
  const auto pairs = SweepPairs<StripedSweep>(a, b, region, 8);
  ASSERT_EQ(pairs.size(), 1u);  // Found in the clamped boundary strip.
}

TEST(ForwardSweep, ExpiryRemovesPassedRectangles) {
  ForwardSweep sweep;
  sweep.Insert(RectF(0, 0, 1, 1, 1));   // Dies at y=1.
  sweep.Insert(RectF(0, 0, 1, 10, 2));  // Survives.
  int hits = 0;
  sweep.QueryAndExpire(RectF(0, 5, 1, 6, 99),
                       [&](const RectF&) { hits++; });
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sweep.ActiveCount(), 1u);
}

TEST(ForwardSweep, RectEndingExactlyAtSweepLineStillActive) {
  // Closed rectangles: yhi == q.ylo still intersects.
  ForwardSweep sweep;
  sweep.Insert(RectF(0, 0, 1, 5, 1));
  int hits = 0;
  sweep.QueryAndExpire(RectF(0, 5, 1, 6, 2), [&](const RectF&) { hits++; });
  EXPECT_EQ(hits, 1);
}

TEST(StripedSweep, MemoryAccountingTracksCopies) {
  const RectF region(0, 0, 100, 100);
  StripedSweep sweep(region, 10);  // Strip width 10.
  sweep.Insert(RectF(0, 0, 100, 1, 1));  // All 10 strips.
  EXPECT_EQ(sweep.ActiveCount(), 10u);
  EXPECT_EQ(sweep.MemoryBytes(), 10 * sizeof(RectF));
  sweep.Insert(RectF(5, 0, 6, 1, 2));  // One strip.
  EXPECT_EQ(sweep.ActiveCount(), 11u);
}

TEST(StripedSweep, DegenerateExtentFallsBackToOneStrip) {
  const RectF region(5, 0, 5, 10);  // Zero-width.
  StripedSweep sweep(region, 100);
  sweep.Insert(RectF(5, 0, 5, 10, 1));
  int hits = 0;
  sweep.QueryAndExpire(RectF(5, 1, 5, 2, 2), [&](const RectF&) { hits++; });
  EXPECT_EQ(hits, 1);
}

TEST(StripedSweep, AmortizedPurgeBoundsStaleEntries) {
  // Insert many short-lived rects in strip 0 while querying only strip 9:
  // the amortized purge must keep the structure from growing without
  // bound.
  const RectF region(0, 0, 100, 100);
  StripedSweep sweep(region, 10);
  for (int i = 0; i < 10000; ++i) {
    const float y = static_cast<float>(i) * 0.01f;
    sweep.Insert(RectF(1, y, 2, y + 0.005f, static_cast<ObjectId>(i)));
  }
  // All but the most recent handful have expired at y=100.
  sweep.Insert(RectF(95, 100, 96, 100, 999999));
  EXPECT_LT(sweep.ActiveCount(), 5000u);
}

TEST(SweepJoin, TracksMaxStructureSize) {
  const RectF region(0, 0, 100, 100);
  auto a = UniformRects(500, region, 3.0f, 31);
  auto b = UniformRects(500, region, 3.0f, 32);
  std::sort(a.begin(), a.end(), OrderByYLo());
  std::sort(b.begin(), b.end(), OrderByYLo());
  VectorRectSource sa(&a), sb(&b);
  StripedSweep active_a(region, 16), active_b(region, 16);
  const SweepRunStats stats = SweepJoinRun(
      sa, sb, active_a, active_b, [](const RectF&, const RectF&) {}, [] {});
  EXPECT_GT(stats.max_structure_bytes, 0u);
  EXPECT_GT(stats.max_active, 0u);
  EXPECT_EQ(stats.output_count, BruteForcePairs(a, b).size());
}

}  // namespace
}  // namespace sj
