// Joins over *dynamically built* (insert/delete churned) trees: the
// algorithms must be exact regardless of index quality — only the I/O
// profile may change (which bench_ablation_index_quality measures).

#include <gtest/gtest.h>

#include "core/join_query.h"
#include "core/spatial_join.h"
#include "datagen/synthetic.h"
#include "join/bfs_join.h"
#include "test_util.h"
#include "util/random.h"

namespace sj {
namespace {

using testing_util::BruteForcePairs;
using testing_util::MakeDataset;
using testing_util::Sorted;
using testing_util::TestDisk;

TEST(DynamicTreeJoin, AllAlgorithmsExactOnChurnedIndexes) {
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  const RectF region(0, 0, 300, 300);
  auto a = UniformRects(2500, region, 2.0f, 1);
  auto b = ClusteredRects(2500, region, 10, 12.0f, 2.0f, 2);

  // Build by insertion, then churn: delete a third, reinsert fresh rects.
  RTreeParams params;
  params.max_entries = 24;
  auto build_churned = [&](std::vector<RectF>* rects, const char* name,
                           uint64_t seed) {
    keep.push_back(td.NewPager(std::string("tree.") + name));
    auto tree = RTree::CreateEmpty(keep.back().get(), params);
    SJ_CHECK(tree.ok());
    for (const RectF& r : *rects) SJ_CHECK_OK(tree->Insert(r));
    Random rng(seed);
    // Delete a random third...
    std::vector<RectF> survivors;
    for (const RectF& r : *rects) {
      if (rng.OneIn(0.33)) {
        SJ_CHECK_OK(tree->Delete(r));
      } else {
        survivors.push_back(r);
      }
    }
    // ...and insert replacements.
    const ObjectId base = 1000000;
    for (int i = 0; i < 500; ++i) {
      const float x = static_cast<float>(rng.UniformDouble(0, 295));
      const float y = static_cast<float>(rng.UniformDouble(0, 295));
      const RectF r(x, y, x + 2, y + 2, base + static_cast<ObjectId>(i));
      SJ_CHECK_OK(tree->Insert(r));
      survivors.push_back(r);
    }
    SJ_CHECK_OK(tree->Validate());
    *rects = survivors;
    return std::move(tree).value();
  };

  RTree ta = build_churned(&a, "a", 11);
  RTree tb = build_churned(&b, "b", 12);
  const auto expected = BruteForcePairs(a, b);

  SpatialJoiner joiner(&td.disk, JoinOptions());
  for (JoinAlgorithm algo : {JoinAlgorithm::kSSSJ, JoinAlgorithm::kPBSM,
                             JoinAlgorithm::kST, JoinAlgorithm::kPQ}) {
    CollectingSink sink;
    auto stats = JoinQuery(joiner)
                     .Input(JoinInput::FromRTree(&ta))
                     .Input(JoinInput::FromRTree(&tb))
                     .Algorithm(algo)
                     .Run(&sink);
    ASSERT_TRUE(stats.ok()) << ToString(algo);
    EXPECT_EQ(Sorted(sink.pairs()), expected) << ToString(algo);
  }
  CollectingSink bfs_sink;
  auto bfs = BFSJoin(ta, tb, &td.disk, JoinOptions(), &bfs_sink);
  ASSERT_TRUE(bfs.ok());
  EXPECT_EQ(Sorted(bfs_sink.pairs()), expected);
}

TEST(DynamicTreeJoin, PqStillTouchesEachPageOnce) {
  // The optimality guarantee is a property of the traversal, not of the
  // packing: it holds for insert-built trees too.
  TestDisk td;
  std::vector<std::unique_ptr<Pager>> keep;
  keep.push_back(td.NewPager("tree"));
  RTreeParams params;
  params.max_entries = 16;
  auto tree = RTree::CreateEmpty(keep.back().get(), params);
  ASSERT_TRUE(tree.ok());
  for (const RectF& r : UniformRects(4000, RectF(0, 0, 200, 200), 1.0f, 3)) {
    ASSERT_TRUE(tree->Insert(r).ok());
  }
  RTreePQSource source(&*tree);
  uint64_t produced = 0;
  float prev = -1e30f;
  while (auto r = source.Next()) {
    EXPECT_GE(r->ylo, prev);
    prev = r->ylo;
    produced++;
  }
  EXPECT_EQ(produced, 4000u);
  EXPECT_EQ(source.pages_read(), tree->node_count());
}

}  // namespace
}  // namespace sj
